(** Physical network topology.

    A topology is a set of switches interconnected by point-to-point links
    in an arbitrary pattern, with hosts attached to switch ports (paper
    section 3.2).  Each switch has port 0 reserved for its control
    processor and [max_ports] external ports.  Any external port can be
    cabled to any other switch port (including another port of the same
    switch — a loop link) or to a host controller port.

    Switch identifiers are dense integers assigned in insertion order; they
    index the arrays used by the routing algorithms.  The graph is the
    {e physical} truth; the algorithms in {!Spanning_tree}, {!Updown} and
    {!Routes} view it through the set of links the port-state machinery has
    declared usable. *)

open Autonet_net

type switch = int
(** Dense switch index. *)

type port = int
(** Port number on a switch: 0 is the control processor, 1..[max_ports]
    are external. *)

type endpoint = switch * port

type link_id = int
(** Dense link index (switch-to-switch links only). *)

type link = {
  id : link_id;
  a : endpoint;
  b : endpoint;
}
(** An undirected switch-to-switch cable.  [a] and [b] are the two ends;
    a loop link has [fst a = fst b]. *)

type host_attachment = {
  host_uid : Uid.t;
  host_port : int;  (** which of the controller's (two) ports this is *)
  switch : switch;
  switch_port : port;
}

type t

val create : ?max_ports:int -> unit -> t
(** [max_ports] defaults to 12, the paper's switch. *)

val max_ports : t -> int

val add_switch : t -> uid:Uid.t -> switch
(** Raises [Invalid_argument] if the UID is already present. *)

val switch_count : t -> int
val switches : t -> switch list
val uid : t -> switch -> Uid.t
val switch_of_uid : t -> Uid.t -> switch option

val connect : t -> endpoint -> endpoint -> link_id
(** Cable two switch ports together.  Raises [Invalid_argument] if either
    port is out of range, is port 0, or is already in use. *)

val attach_host : t -> host_uid:Uid.t -> host_port:int -> endpoint -> unit
(** Cable a host controller port to a switch port. *)

val disconnect : t -> link_id -> unit
(** Remove a link (models unplugging a cable); its ports become free. *)

val links : t -> link list
(** All live switch-to-switch links, in id order. *)

val link : t -> link_id -> link option

val link_count : t -> int

val link_at : t -> endpoint -> link_id option
(** The link plugged into the given port, if any. *)

val host_at : t -> endpoint -> host_attachment option

val hosts : t -> host_attachment list

val host_attachments : t -> Uid.t -> host_attachment list
(** All attachment points of the given host controller. *)

val neighbors : t -> switch -> (port * link_id * switch * port) list
(** [(my_port, link, peer switch, peer port)] for each live non-loop link
    on the switch, in increasing port order. *)

val iter_neighbors : t -> switch -> (port -> link_id -> switch -> port -> unit) -> unit
(** [iter_neighbors t s f] calls [f my_port link peer peer_port] for each
    live non-loop link on [s], in increasing port order — the same
    sequence as {!neighbors} but served from a packed adjacency cache
    with no per-query allocation.  The cache is built on first use and
    invalidated by any topology mutation, so mutating the graph from
    inside [f] is not allowed. *)

val degree : t -> switch -> int
(** Number of live non-loop links on the switch (length of
    {!neighbors}). *)

val max_link_id : t -> int
(** Largest link id ever allocated, or [-1] when no link was ever
    created.  Removed ids below it answer [None]/[-1] everywhere; use
    this to size per-link arrays without walking {!links}. *)

val iter_links : t -> (link -> unit) -> unit
(** Iterate the live switch-to-switch links in id order without building
    the {!links} list. *)

val port_of_link : t -> switch -> link_id -> port
(** The local port a link occupies on the given switch.  For a loop link
    the lower-numbered port is returned.  Raises [Not_found] when the link
    does not touch the switch. *)

val other_end : link -> switch -> endpoint
(** The far endpoint as seen from the given switch.  For loop links returns
    the [b] end when called with the shared switch. *)

val is_loop : link -> bool

val used_ports : t -> switch -> port list
(** External ports currently cabled to something, ascending. *)

val free_port : t -> switch -> port option
(** Lowest-numbered unused external port. *)

val components : t -> switch list list
(** Connected components over live, non-loop links; each component's
    members ascend, components ordered by smallest member. *)

val copy : t -> t
(** Deep copy; mutations on the copy do not affect the original. *)

val pp : Format.formatter -> t -> unit
