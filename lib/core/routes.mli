(** Legal up*/down* routes (paper section 6.6.4).

    A legal route traverses zero or more links in the "up" direction
    followed by zero or more in the "down" direction.  Routing state is the
    pair (switch, phase): a packet that has not yet moved down is in the
    [Up] phase and may take any link; once it moves down it is in the
    [Down] phase and may only continue down.  The phase at a switch is
    fully determined by the port the packet arrived on, which is why the
    hardware forwarding table can enforce the rule locally.

    [compute] runs one backward breadth-first search per destination switch
    over the (switch, phase) state graph, yielding for every state the
    minimal remaining hop count; the current Autopilot fills forwarding
    tables with exactly the minimal-length legal routes, and so do we. *)

type phase = Up | Down

val equal_phase : phase -> phase -> bool
val pp_phase : Format.formatter -> phase -> unit

type t

val compute : Graph.t -> Spanning_tree.t -> Updown.t -> t
(** Flat-array fast path: the legal-move relation is built once in CSR
    form from {!Graph.iter_neighbors} and {!Updown.up_end_i}, transposed
    into a predecessor CSR, and the per-destination BFSes run over int
    arrays with one shared scratch queue — no per-edge list allocation.
    {!Reference.compute} is the retained list-based implementation it is
    cross-checked against. *)

val recompute :
  Graph.t -> Spanning_tree.t -> Updown.t ->
  prev:t -> old_of_new:int array ->
  t * bool array * int
(** Incremental variant of {!compute} for the delta reconfiguration path.
    [prev] is the previous epoch's routing and [old_of_new.(s)] the
    previous index of switch [s] (-1 if it had none).  The move CSR is
    rebuilt (it is cheap and exact), then each destination's backward BFS
    re-runs only when some move-relation edit unseats the old distance
    function as the BFS fixed point: an added move that improves on an
    old distance, or a deleted move that was the sole support of one.
    Unseated (and brand-new) destinations get a fresh BFS; all others
    reuse the previous distance array — shared physically when the switch
    indexing is unchanged, else remapped.

    Returns [(routes, dirty, recomputed)]: [routes] is observationally
    identical to a fresh {!compute}; [dirty.(s)] is true when some
    re-run destination's minimal next-hop set at [s] changed, i.e. when
    switch [s]'s forwarding table must be rebuilt (exact for switches
    whose own links did not change — the delta layer rebuilds endpoint
    switches regardless); [recomputed] counts the destinations whose BFS
    re-ran. *)

val phase_of_arrival : t -> at:Graph.switch -> in_port:Graph.port -> phase
(** Phase of a packet that arrived at [at] on [in_port].  Host ports and
    the control-processor port yield [Up] (the packet is entering the
    network); a link port yields [Up] when the inbound traversal moved
    toward the link's up end, [Down] otherwise.  Raises
    [Invalid_argument] for a port cabled to an excluded (loop) link. *)

val distance : t -> src:Graph.switch -> dst:Graph.switch -> int option
(** Minimal legal hop count from [src] (entering in [Up] phase) to [dst];
    [None] when unreachable (different component). *)

val distance_from : t -> src:Graph.switch -> phase:phase -> dst:Graph.switch -> int option

val next_hops :
  t -> at:Graph.switch -> phase:phase -> dst:Graph.switch ->
  (Graph.port * Graph.link_id) list
(** The out-ports lying on minimal legal routes toward [dst], ascending by
    port.  Empty when [at = dst], when [dst] is unreachable, or when no
    legal continuation exists from this phase. *)

val all_next_hops :
  t -> at:Graph.switch -> phase:phase -> dst:Graph.switch ->
  (Graph.port * Graph.link_id) list
(** Like {!next_hops} but admits every legal continuation that still makes
    progress possible (not only minimal-length ones); used by the A1
    ablation. *)

val legal_route : t -> Graph.t -> Updown.t -> Graph.switch list -> bool
(** Whether a switch path (adjacent switches) respects up*/down*.  Exposed
    for tests. *)

module Reference : sig
  (** The original list-based route computation (legal moves rebuilt from
      [Graph.neighbors] per query, predecessor lists, [Queue.t] BFS),
      kept as the correctness oracle and micro-benchmark baseline.  Its
      accessors mirror the fast path's and must agree with them
      everywhere. *)

  type r

  val compute : Graph.t -> Spanning_tree.t -> Updown.t -> r

  val phase_of_arrival : r -> at:Graph.switch -> in_port:Graph.port -> phase
  val distance : r -> src:Graph.switch -> dst:Graph.switch -> int option

  val distance_from :
    r -> src:Graph.switch -> phase:phase -> dst:Graph.switch -> int option

  val next_hops :
    r -> at:Graph.switch -> phase:phase -> dst:Graph.switch ->
    (Graph.port * Graph.link_id) list

  val all_next_hops :
    r -> at:Graph.switch -> phase:phase -> dst:Graph.switch ->
    (Graph.port * Graph.link_id) list
end
