open Autonet_net

type switch = int
type port = int
type endpoint = switch * port
type link_id = int

type link = { id : link_id; a : endpoint; b : endpoint }

type host_attachment = {
  host_uid : Uid.t;
  host_port : int;
  switch : switch;
  switch_port : port;
}

type occupant = Free | To_link of link_id | To_host of host_attachment

type switch_record = {
  sw_uid : Uid.t;
  ports : occupant array; (* index 0 unused: control processor *)
}

(* Packed adjacency snapshot: for switch [s], entries
   [off.(s) .. off.(s+1) - 1] of the four parallel arrays hold the
   same (port, link, peer, peer_port) tuples [neighbors] returns, in
   the same ascending-port order, but without any per-query allocation.
   Rebuilt lazily after any topology mutation. *)
type csr = {
  off : int array; (* length n_switches + 1 *)
  nb_port : int array;
  nb_link : int array;
  nb_peer : int array;
  nb_peer_port : int array;
}

type t = {
  max_ports : int;
  mutable switch_records : switch_record array;
  mutable n_switches : int;
  mutable links_by_id : link option array;
  mutable n_links : int; (* total ever allocated, including removed *)
  mutable by_uid : switch Uid.Map.t;
  mutable adjacency : csr option; (* invalidated on mutation *)
}

let create ?(max_ports = 12) () =
  if max_ports < 1 || max_ports > 15 then
    invalid_arg "Graph.create: max_ports must be in 1..15";
  { max_ports;
    switch_records = [||];
    n_switches = 0;
    links_by_id = [||];
    n_links = 0;
    by_uid = Uid.Map.empty;
    adjacency = None }

let max_ports t = t.max_ports

let grow_switches t =
  let cap = Array.length t.switch_records in
  if t.n_switches = cap then begin
    let placeholder = { sw_uid = Uid.of_int 0; ports = [||] } in
    let d = Array.make (Stdlib.max 8 (cap * 2)) placeholder in
    Array.blit t.switch_records 0 d 0 t.n_switches;
    t.switch_records <- d
  end

let grow_links t =
  let cap = Array.length t.links_by_id in
  if t.n_links = cap then begin
    let d = Array.make (Stdlib.max 8 (cap * 2)) None in
    Array.blit t.links_by_id 0 d 0 t.n_links;
    t.links_by_id <- d
  end

let add_switch t ~uid =
  if Uid.Map.mem uid t.by_uid then
    invalid_arg (Format.asprintf "Graph.add_switch: duplicate UID %a" Uid.pp uid);
  grow_switches t;
  let s = t.n_switches in
  t.switch_records.(s) <-
    { sw_uid = uid; ports = Array.make (t.max_ports + 1) Free };
  t.n_switches <- t.n_switches + 1;
  t.by_uid <- Uid.Map.add uid s t.by_uid;
  t.adjacency <- None;
  s

let switch_count t = t.n_switches
let switches t = List.init t.n_switches Fun.id

let check_switch t s =
  if s < 0 || s >= t.n_switches then
    invalid_arg (Printf.sprintf "Graph: no such switch %d" s)

let uid t s =
  check_switch t s;
  t.switch_records.(s).sw_uid

let switch_of_uid t u = Uid.Map.find_opt u t.by_uid

let check_port t ((s, p) : endpoint) =
  check_switch t s;
  if p < 1 || p > t.max_ports then
    invalid_arg (Printf.sprintf "Graph: port %d out of range on switch %d" p s)

let occupant t (s, p) = t.switch_records.(s).ports.(p)

let require_free t ep =
  check_port t ep;
  match occupant t ep with
  | Free -> ()
  | To_link _ | To_host _ ->
    let s, p = ep in
    invalid_arg (Printf.sprintf "Graph: port %d of switch %d is in use" p s)

let connect t ep_a ep_b =
  require_free t ep_a;
  if ep_a = ep_b then invalid_arg "Graph.connect: a port cannot cable to itself";
  require_free t ep_b;
  grow_links t;
  let id = t.n_links in
  let l = { id; a = ep_a; b = ep_b } in
  t.links_by_id.(id) <- Some l;
  t.n_links <- t.n_links + 1;
  let sa, pa = ep_a and sb, pb = ep_b in
  t.switch_records.(sa).ports.(pa) <- To_link id;
  t.switch_records.(sb).ports.(pb) <- To_link id;
  t.adjacency <- None;
  id

let attach_host t ~host_uid ~host_port ep =
  require_free t ep;
  let s, p = ep in
  t.switch_records.(s).ports.(p) <-
    To_host { host_uid; host_port; switch = s; switch_port = p }

let disconnect t id =
  if id < 0 || id >= t.n_links then invalid_arg "Graph.disconnect: bad link id";
  match t.links_by_id.(id) with
  | None -> ()
  | Some { a = sa, pa; b = sb, pb; _ } ->
    t.links_by_id.(id) <- None;
    t.switch_records.(sa).ports.(pa) <- Free;
    t.switch_records.(sb).ports.(pb) <- Free;
    t.adjacency <- None

let link t id =
  if id < 0 || id >= t.n_links then None else t.links_by_id.(id)

let links t =
  let acc = ref [] in
  for id = t.n_links - 1 downto 0 do
    match t.links_by_id.(id) with None -> () | Some l -> acc := l :: !acc
  done;
  !acc

let link_count t = List.length (links t)

(* The two occupancy queries tolerate port 0 and out-of-range ports (they
   return [None]) so that callers can probe "what is behind this port?"
   uniformly, control-processor port included. *)
let link_at t ((s, p) as ep) =
  check_switch t s;
  if p < 1 || p > t.max_ports then None
  else
    match occupant t ep with
    | To_link id -> Some id
    | Free | To_host _ -> None

let host_at t ((s, p) as ep) =
  check_switch t s;
  if p < 1 || p > t.max_ports then None
  else
    match occupant t ep with
    | To_host h -> Some h
    | Free | To_link _ -> None

let hosts t =
  let acc = ref [] in
  for s = t.n_switches - 1 downto 0 do
    for p = t.max_ports downto 1 do
      match t.switch_records.(s).ports.(p) with
      | To_host h -> acc := h :: !acc
      | Free | To_link _ -> ()
    done
  done;
  !acc

let host_attachments t u =
  List.filter (fun h -> Uid.equal h.host_uid u) (hosts t)

let is_loop l = fst l.a = fst l.b

let other_end l s =
  let sa, _ = l.a and sb, _ = l.b in
  if sa = s && sb = s then l.b
  else if sa = s then l.b
  else if sb = s then l.a
  else raise Not_found

let neighbors t s =
  check_switch t s;
  let acc = ref [] in
  for p = t.max_ports downto 1 do
    match t.switch_records.(s).ports.(p) with
    | To_link id -> begin
      match t.links_by_id.(id) with
      | Some l when not (is_loop l) ->
        let peer, peer_port = other_end l s in
        acc := (p, id, peer, peer_port) :: !acc
      | Some _ | None -> ()
    end
    | Free | To_host _ -> ()
  done;
  !acc

let build_adjacency t =
  let n = t.n_switches in
  let off = Array.make (n + 1) 0 in
  for s = 0 to n - 1 do
    let deg = ref 0 in
    let ports = t.switch_records.(s).ports in
    for p = 1 to t.max_ports do
      match ports.(p) with
      | To_link id -> begin
        match t.links_by_id.(id) with
        | Some l when not (is_loop l) -> incr deg
        | Some _ | None -> ()
      end
      | Free | To_host _ -> ()
    done;
    off.(s + 1) <- !deg
  done;
  for s = 1 to n do
    off.(s) <- off.(s) + off.(s - 1)
  done;
  let total = off.(n) in
  let nb_port = Array.make total 0
  and nb_link = Array.make total 0
  and nb_peer = Array.make total 0
  and nb_peer_port = Array.make total 0 in
  for s = 0 to n - 1 do
    let i = ref off.(s) in
    let ports = t.switch_records.(s).ports in
    for p = 1 to t.max_ports do
      match ports.(p) with
      | To_link id -> begin
        match t.links_by_id.(id) with
        | Some l when not (is_loop l) ->
          let peer, peer_port = other_end l s in
          nb_port.(!i) <- p;
          nb_link.(!i) <- id;
          nb_peer.(!i) <- peer;
          nb_peer_port.(!i) <- peer_port;
          incr i
        | Some _ | None -> ()
      end
      | Free | To_host _ -> ()
    done
  done;
  { off; nb_port; nb_link; nb_peer; nb_peer_port }

let adjacency t =
  match t.adjacency with
  | Some c -> c
  | None ->
    let c = build_adjacency t in
    t.adjacency <- Some c;
    c

let iter_neighbors t s f =
  check_switch t s;
  let c = adjacency t in
  for i = c.off.(s) to c.off.(s + 1) - 1 do
    f c.nb_port.(i) c.nb_link.(i) c.nb_peer.(i) c.nb_peer_port.(i)
  done

let degree t s =
  check_switch t s;
  let c = adjacency t in
  c.off.(s + 1) - c.off.(s)

let max_link_id t = t.n_links - 1

let iter_links t f =
  for id = 0 to t.n_links - 1 do
    match t.links_by_id.(id) with None -> () | Some l -> f l
  done

let port_of_link t s id =
  check_switch t s;
  match t.links_by_id.(id) with
  | None -> raise Not_found
  | Some l ->
    let sa, pa = l.a and sb, pb = l.b in
    if sa = s && sb = s then Stdlib.min pa pb
    else if sa = s then pa
    else if sb = s then pb
    else raise Not_found

let used_ports t s =
  check_switch t s;
  let acc = ref [] in
  for p = t.max_ports downto 1 do
    match t.switch_records.(s).ports.(p) with
    | Free -> ()
    | To_link _ | To_host _ -> acc := p :: !acc
  done;
  !acc

let free_port t s =
  check_switch t s;
  let rec find p =
    if p > t.max_ports then None
    else
      match t.switch_records.(s).ports.(p) with
      | Free -> Some p
      | To_link _ | To_host _ -> find (p + 1)
  in
  find 1

let components t =
  let seen = Array.make t.n_switches false in
  let comps = ref [] in
  for s = 0 to t.n_switches - 1 do
    if not seen.(s) then begin
      let comp = ref [] in
      let queue = Queue.create () in
      Queue.add s queue;
      seen.(s) <- true;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        comp := v :: !comp;
        iter_neighbors t v (fun _ _ peer _ ->
            if not seen.(peer) then begin
              seen.(peer) <- true;
              Queue.add peer queue
            end)
      done;
      comps := List.sort Int.compare !comp :: !comps
    end
  done;
  List.sort
    (fun a b ->
      match (a, b) with
      | x :: _, y :: _ -> Int.compare x y
      | _, _ -> 0)
    !comps

let copy t =
  { t with
    switch_records =
      Array.map
        (fun r -> { r with ports = Array.copy r.ports })
        t.switch_records;
    links_by_id = Array.copy t.links_by_id }

let pp ppf t =
  Format.fprintf ppf "@[<v>graph: %d switches, %d links, %d host ports@," t.n_switches
    (link_count t)
    (List.length (hosts t));
  List.iter
    (fun l ->
      let sa, pa = l.a and sb, pb = l.b in
      Format.fprintf ppf "  link %d: s%d.p%d -- s%d.p%d%s@," l.id sa pa sb pb
        (if is_loop l then " (loop)" else ""))
    (links t);
  Format.fprintf ppf "@]"
