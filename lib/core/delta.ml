open Autonet_net

type committed = {
  c_graph : Graph.t;
  c_tree : Spanning_tree.t;
  c_updown : Updown.t;
  c_routes : Routes.t;
  c_assignment : Address_assign.t;
  c_own : Tables.spec;
  c_all : Tables.spec array option;
  c_cert : Deadlock.cert option;
}

type change = {
  old_of_new : int array;
  new_of_old : int array;
  link_of_old : int array;
  forced_dirty : bool array;
  added_switches : Graph.switch list;
  removed_numbers : int list;
  changed_links : int;
}

type classification = Tree_preserving of change | Structural of string

let enabled () =
  match Sys.getenv_opt "AUTONET_DELTA" with
  | Some ("0" | "false" | "off" | "no") -> false
  | Some _ | None -> true

exception Bail of string

(* The soundness anchor: the new tree and assignment are always computed
   from scratch on the new graph (both are cheap — microseconds against
   the hundreds of milliseconds of table synthesis) and compared against
   the committed epoch.  The delta path therefore never guesses what
   survived; it only reuses state the comparison has proved identical. *)
let classify ~prev ~graph:g ~tree ~assignment ~me =
  try
    let og = prev.c_graph and otree = prev.c_tree in
    if Graph.max_ports g <> Graph.max_ports og then
      raise (Bail "max-ports changed");
    let n = Graph.switch_count g in
    let n_old = Graph.switch_count og in
    if not (Spanning_tree.mem tree me) then raise (Bail "not a tree member");
    (* A committed epoch covers one closed component; a report switch
       outside the tree would have no routes or address. *)
    for s = 0 to n - 1 do
      if not (Spanning_tree.mem tree s) then raise (Bail "graph not connected")
    done;
    if Spanning_tree.root tree = me then begin
      if prev.c_all = None then raise (Bail "no cached root tables");
      if prev.c_cert = None then raise (Bail "previous epoch not certified")
    end;
    (* Switch alignment by UID. *)
    let old_of_new = Array.make (Stdlib.max n 1) (-1) in
    let new_of_old = Array.make (Stdlib.max n_old 1) (-1) in
    List.iter
      (fun s ->
        match Graph.switch_of_uid og (Graph.uid g s) with
        | Some os ->
          old_of_new.(s) <- os;
          new_of_old.(os) <- s
        | None -> ())
      (Graph.switches g);
    (* Tree preservation: same root, and every surviving switch keeps its
       level and its parent choice (compared by UID and ports — switch
       indices may have shifted). *)
    if
      not
        (Uid.equal
           (Graph.uid g (Spanning_tree.root tree))
           (Graph.uid og (Spanning_tree.root otree)))
    then raise (Bail "root changed");
    for s = 0 to n - 1 do
      let os = old_of_new.(s) in
      if os >= 0 then begin
        if not (Spanning_tree.mem otree os) then
          raise (Bail "membership changed");
        if Spanning_tree.level tree s <> Spanning_tree.level otree os then
          raise (Bail "level changed");
        match (Spanning_tree.parent tree s, Spanning_tree.parent otree os) with
        | None, None -> ()
        | Some p, Some op ->
          if
            p.Spanning_tree.my_port <> op.Spanning_tree.my_port
            || p.Spanning_tree.parent_port <> op.Spanning_tree.parent_port
            || not
                 (Uid.equal
                    (Graph.uid g p.Spanning_tree.parent_switch)
                    (Graph.uid og op.Spanning_tree.parent_switch))
          then raise (Bail "parent changed")
        | _ -> raise (Bail "parent changed")
      end
    done;
    (* Address stability: every surviving switch keeps its number, so
       every surviving address block stays valid. *)
    for s = 0 to n - 1 do
      let os = old_of_new.(s) in
      if
        os >= 0
        && Address_assign.number assignment s
           <> Address_assign.number prev.c_assignment os
      then raise (Bail "switch number changed")
    done;
    (* Link alignment on canonical (UID, port) endpoint pairs — link ids
       are not stable across epochs, and neither is connect order. *)
    let canon gg (l : Graph.link) =
      let sa, pa = l.Graph.a and sb, pb = l.Graph.b in
      let ka = (Uid.to_int (Graph.uid gg sa), pa)
      and kb = (Uid.to_int (Graph.uid gg sb), pb) in
      if ka <= kb then (ka, kb) else (kb, ka)
    in
    let old_links = Hashtbl.create 64 in
    Graph.iter_links og (fun l ->
        Hashtbl.replace old_links (canon og l) l.Graph.id);
    let link_of_old = Array.make (Graph.max_link_id g + 1) (-1) in
    let forced_dirty = Array.make (Stdlib.max n 1) false in
    let changed = ref 0 in
    Graph.iter_links g (fun l ->
        let k = canon g l in
        match Hashtbl.find_opt old_links k with
        | Some ol ->
          link_of_old.(l.Graph.id) <- ol;
          Hashtbl.remove old_links k
        | None ->
          incr changed;
          let sa, _ = l.Graph.a and sb, _ = l.Graph.b in
          forced_dirty.(sa) <- true;
          forced_dirty.(sb) <- true);
    (* Leftovers are removed links: their surviving endpoints rebuild. *)
    Hashtbl.iter
      (fun ((ua, _), (ub, _)) _ ->
        incr changed;
        (match Graph.switch_of_uid g (Uid.of_int ua) with
        | Some s -> forced_dirty.(s) <- true
        | None -> ());
        match Graph.switch_of_uid g (Uid.of_int ub) with
        | Some s -> forced_dirty.(s) <- true
        | None -> ())
      old_links;
    (* A changed host-port set changes the receiving ports, the broadcast
       delivery rows and the self-delivery rows: rebuild. *)
    let host_ports gg ss =
      List.filter
        (fun p -> Graph.host_at gg (ss, p) <> None)
        (Graph.used_ports gg ss)
    in
    for s = 0 to n - 1 do
      let os = old_of_new.(s) in
      if os >= 0 && host_ports g s <> host_ports og os then
        forced_dirty.(s) <- true
    done;
    let added_switches = ref [] in
    for s = n - 1 downto 0 do
      if old_of_new.(s) < 0 then added_switches := s :: !added_switches
    done;
    let removed_numbers = ref [] in
    for os = n_old - 1 downto 0 do
      if new_of_old.(os) < 0 then
        match Address_assign.number prev.c_assignment os with
        | Some nb -> removed_numbers := nb :: !removed_numbers
        | None -> ()
    done;
    Tree_preserving
      { old_of_new;
        new_of_old;
        link_of_old;
        forced_dirty;
        added_switches = !added_switches;
        removed_numbers = List.sort Int.compare !removed_numbers;
        changed_links = !changed }
  with Bail msg -> Structural msg

type stats = {
  st_rebuilt : int;
  st_patched : int;
  st_reused : int;
  st_dests : int;
  st_deadlock_full : bool;
  st_verdict : Deadlock.result option;
}

let apply ?pool ?clock ?on_span ~prev ~graph:g ~tree ~assignment ~me ch =
  let time () = match clock with Some f -> f () | None -> 0. in
  let emit name t0 =
    match on_span with Some f -> f name (time () -. t0) | None -> ()
  in
  let t0 = time () in
  let updown =
    Updown.reorient g tree ~prev:prev.c_updown ~old_of_new_link:ch.link_of_old
      ~new_of_old_switch:ch.new_of_old
  in
  let routes, route_dirty, dests =
    Routes.recompute g tree updown ~prev:prev.c_routes
      ~old_of_new:ch.old_of_new
  in
  emit "delta_routes" t0;
  let t0 = time () in
  let n = Graph.switch_count g in
  let member_change = ch.added_switches <> [] || ch.removed_numbers <> [] in
  let dirty = Array.make n false in
  for s = 0 to n - 1 do
    dirty.(s) <-
      ch.old_of_new.(s) < 0 || ch.forced_dirty.(s) || route_dirty.(s)
  done;
  let rebuilt = ref 0 and patched = ref 0 and reused = ref 0 in
  let patch_spec s prev_spec =
    incr patched;
    Tables.patch g updown routes assignment ~prev:prev_spec ~switch:s
      ~removed_numbers:ch.removed_numbers ~added_dests:ch.added_switches
  in
  let reuse_spec prev_spec =
    incr reused;
    prev_spec
  in
  let own, c_all, deadlock_full, verdict, c_cert =
    match prev.c_all with
    | None ->
      (* Non-root: only our own table is loaded (the root rebuilds and
         verifies the full set on its side). *)
      let own =
        if dirty.(me) then begin
          incr rebuilt;
          Tables.build g tree updown routes assignment me
        end
        else if member_change then patch_spec me prev.c_own
        else reuse_spec prev.c_own
      in
      emit "delta_tables" t0;
      (own, None, false, None, None)
    | Some old_all ->
      let rebuild_list = ref [] in
      for s = n - 1 downto 0 do
        if dirty.(s) then rebuild_list := s :: !rebuild_list
      done;
      let rebuild_list = !rebuild_list in
      let rebuilt_specs =
        match pool with
        | Some pool ->
          (match rebuild_list with
          | m :: _ -> ignore (Graph.degree g m)
          | [] -> ());
          let arr = Array.of_list rebuild_list in
          Autonet_parallel.Pool.parallel_map_array pool
            ~costs:(fun i -> 1 + List.length (Graph.used_ports g arr.(i)))
            (fun s -> Tables.build g tree updown routes assignment s)
            arr
        | None ->
          Array.of_list
            (List.map
               (fun s -> Tables.build g tree updown routes assignment s)
               rebuild_list)
      in
      rebuilt := Array.length rebuilt_specs;
      let all = Array.make (Stdlib.max n 1) prev.c_own in
      let ri = ref 0 in
      for s = 0 to n - 1 do
        if dirty.(s) then begin
          all.(s) <- rebuilt_specs.(!ri);
          incr ri
        end
        else if member_change then
          all.(s) <- patch_spec s old_all.(ch.old_of_new.(s))
        else all.(s) <- reuse_spec old_all.(ch.old_of_new.(s))
      done;
      emit "delta_tables" t0;
      let t0 = time () in
      (* Incremental deadlock verification: re-certify only the tables
         that changed.  With an unchanged member set the certificate is
         identical to the previous epoch's, under which every reused spec
         already certified; with a changed member set there are no reused
         specs, so the check below covers every table.  Any failure falls
         back to the full checker — the certificate is one-sided. *)
      let cert = Deadlock.certificate g tree in
      let certifies sp = Deadlock.certifies cert g updown sp in
      let to_check = ref [] in
      for s = n - 1 downto 0 do
        if dirty.(s) || member_change then to_check := all.(s) :: !to_check
      done;
      let result =
        if List.for_all certifies !to_check then
          (all.(me), Some all, false, Some Deadlock.Acyclic, Some cert)
        else begin
          let specs = Array.to_list all in
          let v = Deadlock.check_tables ?pool g specs in
          let c_cert =
            match v with
            | Deadlock.Acyclic ->
              if List.for_all certifies specs then Some cert else None
            | Deadlock.Cycle _ -> None
          in
          (all.(me), Some all, true, Some v, c_cert)
        end
      in
      emit "delta_deadlock" t0;
      result
  in
  let committed =
    { c_graph = g;
      c_tree = tree;
      c_updown = updown;
      c_routes = routes;
      c_assignment = assignment;
      c_own = own;
      c_all;
      c_cert }
  in
  ( committed,
    { st_rebuilt = !rebuilt;
      st_patched = !patched;
      st_reused = !reused;
      st_dests = dests;
      st_deadlock_full = deadlock_full;
      st_verdict = verdict } )

let commit_full ~graph ~tree ~updown ~routes ~assignment ~own ~all =
  let n = Graph.switch_count graph in
  let c_all =
    match all with
    | Some specs when List.length specs = n ->
      let arr = Array.make (Stdlib.max n 1) own in
      List.iter (fun sp -> arr.(Tables.switch sp) <- sp) specs;
      Some arr
    | Some _ | None -> None
  in
  let c_cert =
    match c_all with
    | None -> None
    | Some arr ->
      let cert = Deadlock.certificate graph tree in
      if Array.for_all (fun sp -> Deadlock.certifies cert graph updown sp) arr
      then Some cert
      else None
  in
  { c_graph = graph;
    c_tree = tree;
    c_updown = updown;
    c_routes = routes;
    c_assignment = assignment;
    c_own = own;
    c_all;
    c_cert }
