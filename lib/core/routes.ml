type phase = Up | Down

let equal_phase (a : phase) b = a = b

let pp_phase ppf = function
  | Up -> Format.pp_print_string ppf "up"
  | Down -> Format.pp_print_string ppf "down"

(* A state encodes (switch, phase) as [2*switch + (0|1)]. *)
let state s = function Up -> 2 * s | Down -> (2 * s) + 1

type t = {
  graph : Graph.t;
  updown : Updown.t;
  n : int;
  (* Legal forward moves in CSR form: for state [st], entries
     [move_off.(st) .. move_off.(st+1) - 1] of the three parallel arrays
     give the destination state, the out-port and the link of each legal
     move, in ascending out-port order. *)
  move_off : int array;
  move_state : int array;
  move_port : int array;
  move_link : int array;
  (* dist.(d).(state) = minimal legal hops from state to switch d, or -1. *)
  dist : int array array;
}

(* Build the legal-move CSR straight from the graph's packed adjacency:
   from (s, Up) every usable link is a move (staying Up when it goes up),
   from (s, Down) only the links whose far end is the down end. *)
let build_moves g updown n =
  let nstates = 2 * n in
  let move_off = Array.make (nstates + 1) 0 in
  for s = 0 to n - 1 do
    let up_moves = ref 0 and down_moves = ref 0 in
    Graph.iter_neighbors g s (fun _ l peer _ ->
        let up = Updown.up_end_i updown l in
        if up >= 0 then begin
          incr up_moves;
          if up <> peer then incr down_moves
        end);
    move_off.((2 * s) + 1) <- !up_moves;
    move_off.((2 * s) + 2) <- !down_moves
  done;
  for st = 1 to nstates do
    move_off.(st) <- move_off.(st) + move_off.(st - 1)
  done;
  let total = move_off.(nstates) in
  let move_state = Array.make total 0
  and move_port = Array.make total 0
  and move_link = Array.make total 0 in
  let cursor = Array.make nstates 0 in
  Array.blit move_off 0 cursor 0 nstates;
  for s = 0 to n - 1 do
    Graph.iter_neighbors g s (fun p l peer _ ->
        let up = Updown.up_end_i updown l in
        if up >= 0 then begin
          let dest = if up = peer then 2 * peer else (2 * peer) + 1 in
          let i = cursor.(2 * s) in
          move_state.(i) <- dest;
          move_port.(i) <- p;
          move_link.(i) <- l;
          cursor.(2 * s) <- i + 1;
          if up <> peer then begin
            let j = cursor.((2 * s) + 1) in
            move_state.(j) <- dest;
            move_port.(j) <- p;
            move_link.(j) <- l;
            cursor.((2 * s) + 1) <- j + 1
          end
        end)
  done;
  (move_off, move_state, move_port, move_link)

let compute g tree updown =
  let n = Graph.switch_count g in
  let nstates = 2 * n in
  let move_off, move_state, move_port, move_link = build_moves g updown n in
  (* Transpose the move CSR into a predecessor CSR for the backward BFS:
     pred.(st') lists the states one legal move before st'. *)
  let pred_off = Array.make (nstates + 1) 0 in
  let total = move_off.(nstates) in
  for i = 0 to total - 1 do
    pred_off.(move_state.(i) + 1) <- pred_off.(move_state.(i) + 1) + 1
  done;
  for st = 1 to nstates do
    pred_off.(st) <- pred_off.(st) + pred_off.(st - 1)
  done;
  let pred = Array.make total 0 in
  let cursor = Array.make nstates 0 in
  Array.blit pred_off 0 cursor 0 nstates;
  for st = 0 to nstates - 1 do
    for i = move_off.(st) to move_off.(st + 1) - 1 do
      let dest = move_state.(i) in
      pred.(cursor.(dest)) <- st;
      cursor.(dest) <- cursor.(dest) + 1
    done
  done;
  (* One backward BFS per member destination, sharing one int queue. *)
  let dist = Array.make n [||] in
  let queue = Array.make (Stdlib.max nstates 1) 0 in
  for d = 0 to n - 1 do
    if Spanning_tree.mem tree d then begin
      let dd = Array.make nstates (-1) in
      let head = ref 0 and tail = ref 0 in
      dd.(2 * d) <- 0;
      dd.((2 * d) + 1) <- 0;
      queue.(0) <- 2 * d;
      queue.(1) <- (2 * d) + 1;
      tail := 2;
      while !head < !tail do
        let st = queue.(!head) in
        incr head;
        let nd = dd.(st) + 1 in
        for i = pred_off.(st) to pred_off.(st + 1) - 1 do
          let st' = pred.(i) in
          if dd.(st') < 0 then begin
            dd.(st') <- nd;
            queue.(!tail) <- st';
            incr tail
          end
        done
      done;
      dist.(d) <- dd
    end
  done;
  { graph = g; updown; n; move_off; move_state; move_port; move_link; dist }

let phase_of_arrival_at graph updown ~at ~in_port =
  if in_port = 0 then Up
  else
    match Graph.host_at graph (at, in_port) with
    | Some _ -> Up
    | None -> begin
      match Graph.link_at graph (at, in_port) with
      | None -> Up (* unconnected port: treat as an entry point *)
      | Some l_id -> begin
        match Updown.up_end updown l_id with
        | None ->
          invalid_arg "Routes.phase_of_arrival: port on an excluded link"
        | Some up -> if up = at then Up else Down
      end
    end

let phase_of_arrival t ~at ~in_port =
  phase_of_arrival_at t.graph t.updown ~at ~in_port

let distance_from t ~src ~phase ~dst =
  if Array.length t.dist.(dst) = 0 then None
  else
    let d = t.dist.(dst).(state src phase) in
    if d < 0 then None else Some d

let distance t ~src ~dst = distance_from t ~src ~phase:Up ~dst

let next_hops t ~at ~phase ~dst =
  if at = dst then []
  else if Array.length t.dist.(dst) = 0 then []
  else
    let dd = t.dist.(dst) in
    let st = state at phase in
    let here = dd.(st) in
    if here < 0 then []
    else begin
      let acc = ref [] in
      for i = t.move_off.(st + 1) - 1 downto t.move_off.(st) do
        if dd.(t.move_state.(i)) = here - 1 then
          acc := (t.move_port.(i), t.move_link.(i)) :: !acc
      done;
      !acc
    end

let all_next_hops t ~at ~phase ~dst =
  if at = dst then []
  else if Array.length t.dist.(dst) = 0 then []
  else
    let dd = t.dist.(dst) in
    let st = state at phase in
    let acc = ref [] in
    for i = t.move_off.(st + 1) - 1 downto t.move_off.(st) do
      if dd.(t.move_state.(i)) >= 0 then
        acc := (t.move_port.(i), t.move_link.(i)) :: !acc
    done;
    !acc

let legal_route _t g updown path =
  let rec step phase = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
      (* Find a link between a and b compatible with the phase. *)
      let candidates =
        List.filter_map
          (fun (_, l_id, peer, _) ->
            if peer = b && Updown.usable updown l_id then
              match Graph.link g l_id with
              | Some l -> Some (Updown.goes_up updown l ~from:a)
              | None -> None
            else None)
          (Graph.neighbors g a)
      in
      let can_continue up_move =
        match (phase, up_move) with
        | Up, true -> Some Up
        | Up, false | Down, false -> Some Down
        | Down, true -> None
      in
      List.exists
        (fun up_move ->
          match can_continue up_move with
          | Some ph' -> step ph' rest
          | None -> false)
        candidates
  in
  step Up path

module Reference = struct
  (* The original implementation: legal moves recomputed as lists from
     [Graph.neighbors] on every query, predecessor lists of boxed ints,
     [Queue.t]-based BFS.  Kept as the correctness oracle for the CSR
     fast path above and as the micro-benchmark baseline. *)

  type r = {
    graph : Graph.t;
    updown : Updown.t;
    n : int;
    dist : int array array;
  }

  (* Legal forward moves out of (s, ph): (next switch, next phase, port,
     link). *)
  let moves g updown s ph =
    List.filter_map
      (fun (p, l_id, peer, _peer_port) ->
        match Graph.link g l_id with
        | None -> None
        | Some l ->
          if not (Updown.usable updown l_id) then None
          else
            let up_move = Updown.goes_up updown l ~from:s in
            begin
              match (ph, up_move) with
              | Up, true -> Some (peer, Up, p, l_id)
              | Up, false -> Some (peer, Down, p, l_id)
              | Down, false -> Some (peer, Down, p, l_id)
              | Down, true -> None
            end)
      (Graph.neighbors g s)

  let compute g tree updown =
    let n = Graph.switch_count g in
    let pred = Array.make (2 * n) [] in
    List.iter
      (fun s ->
        List.iter
          (fun ph ->
            List.iter
              (fun (peer, ph', _p, _l) ->
                pred.(state peer ph') <- state s ph :: pred.(state peer ph'))
              (moves g updown s ph))
          [ Up; Down ])
      (Graph.switches g);
    let dist = Array.make n [||] in
    List.iter
      (fun d ->
        if Spanning_tree.mem tree d then begin
          let dd = Array.make (2 * n) (-1) in
          let queue = Queue.create () in
          dd.(state d Up) <- 0;
          dd.(state d Down) <- 0;
          Queue.add (state d Up) queue;
          Queue.add (state d Down) queue;
          while not (Queue.is_empty queue) do
            let st = Queue.pop queue in
            List.iter
              (fun st' ->
                if dd.(st') < 0 then begin
                  dd.(st') <- dd.(st) + 1;
                  Queue.add st' queue
                end)
              pred.(st)
          done;
          dist.(d) <- dd
        end)
      (Graph.switches g);
    { graph = g; updown; n; dist }

  let phase_of_arrival t ~at ~in_port =
    phase_of_arrival_at t.graph t.updown ~at ~in_port

  let distance_from t ~src ~phase ~dst =
    if Array.length t.dist.(dst) = 0 then None
    else
      let d = t.dist.(dst).(state src phase) in
      if d < 0 then None else Some d

  let distance t ~src ~dst = distance_from t ~src ~phase:Up ~dst

  let next_hops t ~at ~phase ~dst =
    if at = dst then []
    else if Array.length t.dist.(dst) = 0 then []
    else
      let dd = t.dist.(dst) in
      let here = dd.(state at phase) in
      if here < 0 then []
      else
        List.filter_map
          (fun (peer, ph', p, l_id) ->
            if dd.(state peer ph') = here - 1 then Some (p, l_id) else None)
          (moves t.graph t.updown at phase)

  let all_next_hops t ~at ~phase ~dst =
    if at = dst then []
    else if Array.length t.dist.(dst) = 0 then []
    else
      let dd = t.dist.(dst) in
      List.filter_map
        (fun (peer, ph', p, l_id) ->
          if dd.(state peer ph') >= 0 then Some (p, l_id) else None)
        (moves t.graph t.updown at phase)
end
