type phase = Up | Down

let equal_phase (a : phase) b = a = b

let pp_phase ppf = function
  | Up -> Format.pp_print_string ppf "up"
  | Down -> Format.pp_print_string ppf "down"

(* A state encodes (switch, phase) as [2*switch + (0|1)]. *)
let state s = function Up -> 2 * s | Down -> (2 * s) + 1

type t = {
  graph : Graph.t;
  updown : Updown.t;
  n : int;
  (* Legal forward moves in CSR form: for state [st], entries
     [move_off.(st) .. move_off.(st+1) - 1] of the three parallel arrays
     give the destination state, the out-port and the link of each legal
     move, in ascending out-port order. *)
  move_off : int array;
  move_state : int array;
  move_port : int array;
  move_link : int array;
  (* dist.(d).(state) = minimal legal hops from state to switch d, or -1. *)
  dist : int array array;
}

(* Build the legal-move CSR straight from the graph's packed adjacency:
   from (s, Up) every usable link is a move (staying Up when it goes up),
   from (s, Down) only the links whose far end is the down end. *)
let build_moves g updown n =
  let nstates = 2 * n in
  let move_off = Array.make (nstates + 1) 0 in
  for s = 0 to n - 1 do
    let up_moves = ref 0 and down_moves = ref 0 in
    Graph.iter_neighbors g s (fun _ l peer _ ->
        let up = Updown.up_end_i updown l in
        if up >= 0 then begin
          incr up_moves;
          if up <> peer then incr down_moves
        end);
    move_off.((2 * s) + 1) <- !up_moves;
    move_off.((2 * s) + 2) <- !down_moves
  done;
  for st = 1 to nstates do
    move_off.(st) <- move_off.(st) + move_off.(st - 1)
  done;
  let total = move_off.(nstates) in
  let move_state = Array.make total 0
  and move_port = Array.make total 0
  and move_link = Array.make total 0 in
  let cursor = Array.make nstates 0 in
  Array.blit move_off 0 cursor 0 nstates;
  for s = 0 to n - 1 do
    Graph.iter_neighbors g s (fun p l peer _ ->
        let up = Updown.up_end_i updown l in
        if up >= 0 then begin
          let dest = if up = peer then 2 * peer else (2 * peer) + 1 in
          let i = cursor.(2 * s) in
          move_state.(i) <- dest;
          move_port.(i) <- p;
          move_link.(i) <- l;
          cursor.(2 * s) <- i + 1;
          if up <> peer then begin
            let j = cursor.((2 * s) + 1) in
            move_state.(j) <- dest;
            move_port.(j) <- p;
            move_link.(j) <- l;
            cursor.((2 * s) + 1) <- j + 1
          end
        end)
  done;
  (move_off, move_state, move_port, move_link)

(* Transpose the move CSR into a predecessor CSR for the backward BFS:
   pred.(st') lists the states one legal move before st'. *)
let transpose ~nstates ~move_off ~move_state =
  let pred_off = Array.make (nstates + 1) 0 in
  let total = move_off.(nstates) in
  for i = 0 to total - 1 do
    pred_off.(move_state.(i) + 1) <- pred_off.(move_state.(i) + 1) + 1
  done;
  for st = 1 to nstates do
    pred_off.(st) <- pred_off.(st) + pred_off.(st - 1)
  done;
  let pred = Array.make total 0 in
  let cursor = Array.make nstates 0 in
  Array.blit pred_off 0 cursor 0 nstates;
  for st = 0 to nstates - 1 do
    for i = move_off.(st) to move_off.(st + 1) - 1 do
      let dest = move_state.(i) in
      pred.(cursor.(dest)) <- st;
      cursor.(dest) <- cursor.(dest) + 1
    done
  done;
  (pred_off, pred)

(* One backward BFS from destination [d] over the predecessor CSR, into a
   fresh distance array.  [queue] is caller-provided scratch of at least
   [nstates] ints. *)
let bfs_dest ~nstates ~pred_off ~pred ~queue d =
  let dd = Array.make nstates (-1) in
  let head = ref 0 and tail = ref 0 in
  dd.(2 * d) <- 0;
  dd.((2 * d) + 1) <- 0;
  queue.(0) <- 2 * d;
  queue.(1) <- (2 * d) + 1;
  tail := 2;
  while !head < !tail do
    let st = queue.(!head) in
    incr head;
    let nd = dd.(st) + 1 in
    for i = pred_off.(st) to pred_off.(st + 1) - 1 do
      let st' = pred.(i) in
      if dd.(st') < 0 then begin
        dd.(st') <- nd;
        queue.(!tail) <- st';
        incr tail
      end
    done
  done;
  dd

let compute g tree updown =
  let n = Graph.switch_count g in
  let nstates = 2 * n in
  let move_off, move_state, move_port, move_link = build_moves g updown n in
  let pred_off, pred = transpose ~nstates ~move_off ~move_state in
  (* One backward BFS per member destination, sharing one int queue. *)
  let dist = Array.make n [||] in
  let queue = Array.make (Stdlib.max nstates 1) 0 in
  for d = 0 to n - 1 do
    if Spanning_tree.mem tree d then
      dist.(d) <- bfs_dest ~nstates ~pred_off ~pred ~queue d
  done;
  { graph = g; updown; n; move_off; move_state; move_port; move_link; dist }

let recompute g tree updown ~prev ~old_of_new =
  let n = Graph.switch_count g in
  let nstates = 2 * n in
  let move_off, move_state, move_port, move_link = build_moves g updown n in
  let pred_off, pred = transpose ~nstates ~move_off ~move_state in
  let identity =
    n = prev.n
    &&
    let ok = ref true in
    for s = 0 to n - 1 do
      if old_of_new.(s) <> s then ok := false
    done;
    !ok
  in
  (* Per-state diff of the legal-move multiset between the epochs, with
     old moves and the comparison keys of new moves both expressed in the
     OLD state space.  A new move whose target switch has no old image
     gets a unique negative key, so it always surfaces as an addition. *)
  let dels = ref [] (* (st_new, st_old, deleted old-space target) *)
  and adds = ref [] (* (st_new, added new-space target) *) in
  for ns = 0 to n - 1 do
    let os = old_of_new.(ns) in
    for ph = 0 to 1 do
      let st = (2 * ns) + ph in
      if os < 0 then
        (* a switch with no previous image: every move is an addition *)
        for i = move_off.(st) to move_off.(st + 1) - 1 do
          adds := (st, move_state.(i)) :: !adds
        done
      else begin
        let ost = (2 * os) + ph in
        let nw = ref [] in
        for i = move_off.(st) to move_off.(st + 1) - 1 do
          let t' = move_state.(i) in
          let po = old_of_new.(t' / 2) in
          let key = if po >= 0 then (2 * po) + (t' land 1) else -2 - t' in
          nw := (key, t') :: !nw
        done;
        let nw = List.sort (fun (a, _) (b, _) -> Int.compare a b) !nw in
        let ol = ref [] in
        for i = prev.move_off.(ost) to prev.move_off.(ost + 1) - 1 do
          ol := prev.move_state.(i) :: !ol
        done;
        let ol = List.sort Int.compare !ol in
        let rec diff o nl =
          match (o, nl) with
          | [], [] -> ()
          | o1 :: orest, ((k1, t') :: nrest as nall) ->
            if o1 = k1 then diff orest nrest
            else if o1 < k1 then begin
              dels := (st, ost, o1) :: !dels;
              diff orest nall
            end
            else begin
              adds := (st, t') :: !adds;
              diff o nrest
            end
          | o1 :: orest, [] ->
            dels := (st, ost, o1) :: !dels;
            diff orest []
          | [], (_, t') :: nrest ->
            adds := (st, t') :: !adds;
            diff [] nrest
        in
        diff ol nw
      end
    done
  done;
  let dels = !dels and adds = !adds in
  let dist = Array.make n [||] in
  let dirty = Array.make n false in
  let recomputed = ref 0 in
  let queue = Array.make (Stdlib.max nstates 1) 0 in
  for d = 0 to n - 1 do
    if Spanning_tree.mem tree d then begin
      let od = old_of_new.(d) in
      let dd_old = if od >= 0 then prev.dist.(od) else [||] in
      if Array.length dd_old = 0 then begin
        (* brand-new destination: fresh BFS; no switch becomes dirty for
           it — surviving tables gain its address block by patching, not
           because an existing next-hop set changed *)
        dist.(d) <- bfs_dest ~nstates ~pred_off ~pred ~queue d;
        incr recomputed
      end
      else begin
        (* Previous distances at an old-space / new-space state. *)
        let vo ost = dd_old.(ost) in
        let vn st =
          let os = old_of_new.(st / 2) in
          if os < 0 then -1 else dd_old.((2 * os) + (st land 1))
        in
        (* The old distance function (extended with -1 at states of new
           switches) stays the unique BFS fixed point of the new move
           relation unless some edit seeds a change: an added move that
           improves on the old distance, or a deleted move that was the
           only support of its source's distance. *)
        let seeded =
          List.exists
            (fun (st, st') ->
              let t = vn st' in
              t >= 0
              &&
              let h = vn st in
              h < 0 || h > t + 1)
            adds
          || List.exists
               (fun (st, ost, ost') ->
                 let h = vo ost and t = vo ost' in
                 h >= 1 && t = h - 1
                 &&
                 let supported = ref false in
                 for i = move_off.(st) to move_off.(st + 1) - 1 do
                   if (not !supported) && vn move_state.(i) = h - 1 then
                     supported := true
                 done;
                 not !supported)
               dels
        in
        if not seeded then
          if identity then dist.(d) <- dd_old
          else begin
            let dd = Array.make nstates (-1) in
            for st = 0 to nstates - 1 do
              dd.(st) <- vn st
            done;
            dist.(d) <- dd
          end
        else begin
          let dd = bfs_dest ~nstates ~pred_off ~pred ~queue d in
          dist.(d) <- dd;
          incr recomputed;
          (* Exact dirtiness: a surviving switch must rebuild its table
             iff, at one of its states, the set of minimal moves toward
             [d] changed.  Comparing the minimality predicate per move of
             the NEW CSR is exact for switches whose move list is
             unchanged — and any switch whose move list did change is an
             endpoint of a changed link, which the delta layer rebuilds
             unconditionally. *)
          for st = 0 to nstates - 1 do
            let s = st / 2 in
            if s <> d && (not dirty.(s)) && old_of_new.(s) >= 0 then begin
              let hn = dd.(st) and ho = vn st in
              for i = move_off.(st) to move_off.(st + 1) - 1 do
                let t' = move_state.(i) in
                let pn = hn > 0 && dd.(t') = hn - 1 in
                let po = ho > 0 && vn t' = ho - 1 in
                if pn <> po then dirty.(s) <- true
              done
            end
          done
        end
      end
    end
  done;
  ( { graph = g; updown; n; move_off; move_state; move_port; move_link; dist },
    dirty,
    !recomputed )

let phase_of_arrival_at graph updown ~at ~in_port =
  if in_port = 0 then Up
  else
    match Graph.host_at graph (at, in_port) with
    | Some _ -> Up
    | None -> begin
      match Graph.link_at graph (at, in_port) with
      | None -> Up (* unconnected port: treat as an entry point *)
      | Some l_id -> begin
        match Updown.up_end updown l_id with
        | None ->
          invalid_arg "Routes.phase_of_arrival: port on an excluded link"
        | Some up -> if up = at then Up else Down
      end
    end

let phase_of_arrival t ~at ~in_port =
  phase_of_arrival_at t.graph t.updown ~at ~in_port

let distance_from t ~src ~phase ~dst =
  if Array.length t.dist.(dst) = 0 then None
  else
    let d = t.dist.(dst).(state src phase) in
    if d < 0 then None else Some d

let distance t ~src ~dst = distance_from t ~src ~phase:Up ~dst

let next_hops t ~at ~phase ~dst =
  if at = dst then []
  else if Array.length t.dist.(dst) = 0 then []
  else
    let dd = t.dist.(dst) in
    let st = state at phase in
    let here = dd.(st) in
    if here < 0 then []
    else begin
      let acc = ref [] in
      for i = t.move_off.(st + 1) - 1 downto t.move_off.(st) do
        if dd.(t.move_state.(i)) = here - 1 then
          acc := (t.move_port.(i), t.move_link.(i)) :: !acc
      done;
      !acc
    end

let all_next_hops t ~at ~phase ~dst =
  if at = dst then []
  else if Array.length t.dist.(dst) = 0 then []
  else
    let dd = t.dist.(dst) in
    let st = state at phase in
    let acc = ref [] in
    for i = t.move_off.(st + 1) - 1 downto t.move_off.(st) do
      if dd.(t.move_state.(i)) >= 0 then
        acc := (t.move_port.(i), t.move_link.(i)) :: !acc
    done;
    !acc

let legal_route _t g updown path =
  let rec step phase = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
      (* Find a link between a and b compatible with the phase. *)
      let candidates =
        List.filter_map
          (fun (_, l_id, peer, _) ->
            if peer = b && Updown.usable updown l_id then
              match Graph.link g l_id with
              | Some l -> Some (Updown.goes_up updown l ~from:a)
              | None -> None
            else None)
          (Graph.neighbors g a)
      in
      let can_continue up_move =
        match (phase, up_move) with
        | Up, true -> Some Up
        | Up, false | Down, false -> Some Down
        | Down, true -> None
      in
      List.exists
        (fun up_move ->
          match can_continue up_move with
          | Some ph' -> step ph' rest
          | None -> false)
        candidates
  in
  step Up path

module Reference = struct
  (* The original implementation: legal moves recomputed as lists from
     [Graph.neighbors] on every query, predecessor lists of boxed ints,
     [Queue.t]-based BFS.  Kept as the correctness oracle for the CSR
     fast path above and as the micro-benchmark baseline. *)

  type r = {
    graph : Graph.t;
    updown : Updown.t;
    n : int;
    dist : int array array;
  }

  (* Legal forward moves out of (s, ph): (next switch, next phase, port,
     link). *)
  let moves g updown s ph =
    List.filter_map
      (fun (p, l_id, peer, _peer_port) ->
        match Graph.link g l_id with
        | None -> None
        | Some l ->
          if not (Updown.usable updown l_id) then None
          else
            let up_move = Updown.goes_up updown l ~from:s in
            begin
              match (ph, up_move) with
              | Up, true -> Some (peer, Up, p, l_id)
              | Up, false -> Some (peer, Down, p, l_id)
              | Down, false -> Some (peer, Down, p, l_id)
              | Down, true -> None
            end)
      (Graph.neighbors g s)

  let compute g tree updown =
    let n = Graph.switch_count g in
    let pred = Array.make (2 * n) [] in
    List.iter
      (fun s ->
        List.iter
          (fun ph ->
            List.iter
              (fun (peer, ph', _p, _l) ->
                pred.(state peer ph') <- state s ph :: pred.(state peer ph'))
              (moves g updown s ph))
          [ Up; Down ])
      (Graph.switches g);
    let dist = Array.make n [||] in
    List.iter
      (fun d ->
        if Spanning_tree.mem tree d then begin
          let dd = Array.make (2 * n) (-1) in
          let queue = Queue.create () in
          dd.(state d Up) <- 0;
          dd.(state d Down) <- 0;
          Queue.add (state d Up) queue;
          Queue.add (state d Down) queue;
          while not (Queue.is_empty queue) do
            let st = Queue.pop queue in
            List.iter
              (fun st' ->
                if dd.(st') < 0 then begin
                  dd.(st') <- dd.(st) + 1;
                  Queue.add st' queue
                end)
              pred.(st)
          done;
          dist.(d) <- dd
        end)
      (Graph.switches g);
    { graph = g; updown; n; dist }

  let phase_of_arrival t ~at ~in_port =
    phase_of_arrival_at t.graph t.updown ~at ~in_port

  let distance_from t ~src ~phase ~dst =
    if Array.length t.dist.(dst) = 0 then None
    else
      let d = t.dist.(dst).(state src phase) in
      if d < 0 then None else Some d

  let distance t ~src ~dst = distance_from t ~src ~phase:Up ~dst

  let next_hops t ~at ~phase ~dst =
    if at = dst then []
    else if Array.length t.dist.(dst) = 0 then []
    else
      let dd = t.dist.(dst) in
      let here = dd.(state at phase) in
      if here < 0 then []
      else
        List.filter_map
          (fun (peer, ph', p, l_id) ->
            if dd.(state peer ph') = here - 1 then Some (p, l_id) else None)
          (moves t.graph t.updown at phase)

  let all_next_hops t ~at ~phase ~dst =
    if at = dst then []
    else if Array.length t.dist.(dst) = 0 then []
    else
      let dd = t.dist.(dst) in
      List.filter_map
        (fun (peer, ph', p, l_id) ->
          if dd.(state peer ph') >= 0 then Some (p, l_id) else None)
        (moves t.graph t.updown at phase)
end
