open Autonet_net

let valid_number n =
  n >= Short_address.first_switch_number && n <= Short_address.max_switch_number

let resolve_proposals proposals =
  let n = List.length proposals in
  if n > Short_address.max_switch_number then
    invalid_arg "Address_assign: more switches than assignable numbers";
  let uids = List.map fst proposals in
  if List.length (List.sort_uniq Uid.compare uids) <> n then
    invalid_arg "Address_assign: duplicate UID";
  (* Requested numbers, whether or not they end up granted: losers must
     receive numbers nobody requested. *)
  let requested = Hashtbl.create 16 in
  List.iter
    (fun (_, p) -> if valid_number p then Hashtbl.replace requested p ())
    proposals;
  (* Grant in UID order so that each contested number goes to the smallest
     UID proposing it. *)
  let in_uid_order =
    List.sort (fun (a, _) (b, _) -> Uid.compare a b) proposals
  in
  let taken = Hashtbl.create 16 in
  let granted, losers =
    List.fold_left
      (fun (granted, losers) (uid, p) ->
        if valid_number p && not (Hashtbl.mem taken p) then begin
          Hashtbl.replace taken p ();
          ((uid, p) :: granted, losers)
        end
        else (granted, uid :: losers))
      ([], []) in_uid_order
  in
  (* Lowest unrequested numbers for the losers, in UID order; fall back to
     any free number if the unrequested ones run out. *)
  let next_free ~avoid_requested =
    let rec find k =
      if k > Short_address.max_switch_number then None
      else if
        (not (Hashtbl.mem taken k))
        && ((not avoid_requested) || not (Hashtbl.mem requested k))
      then Some k
      else find (k + 1)
    in
    find Short_address.first_switch_number
  in
  (* [losers] accumulated newest-first; restore UID order so the smallest
     UID receives the lowest number. *)
  let assigned_losers =
    List.map
      (fun uid ->
        let k =
          match next_free ~avoid_requested:true with
          | Some k -> k
          | None -> (
            match next_free ~avoid_requested:false with
            | Some k -> k
            | None -> assert false (* n <= max_switch_number *))
        in
        Hashtbl.replace taken k ();
        (uid, k))
      (List.rev losers)
  in
  List.sort
    (fun (a, _) (b, _) -> Uid.compare a b)
    (List.rev_append granted assigned_losers)

type t = {
  numbers : int array; (* per switch index; -1 = outside this assignment *)
  by_number : (int, Graph.switch) Hashtbl.t;
}

let make g proposals =
  let resolved =
    resolve_proposals
      (List.map (fun (s, p) -> (Graph.uid g s, p)) proposals)
  in
  let numbers = Array.make (Graph.switch_count g) (-1) in
  let by_number = Hashtbl.create 16 in
  List.iter
    (fun (uid, k) ->
      match Graph.switch_of_uid g uid with
      | Some s ->
        numbers.(s) <- k;
        Hashtbl.replace by_number k s
      | None -> assert false)
    resolved;
  { numbers; by_number }

let number t s =
  if s < 0 || s >= Array.length t.numbers || t.numbers.(s) < 0 then None
  else Some t.numbers.(s)

let switch_of_number t k = Hashtbl.find_opt t.by_number k

let max_number t =
  Array.fold_left (fun acc k -> if k > acc then k else acc) (-1) t.numbers

let address t s port =
  match number t s with
  | None -> invalid_arg "Address_assign.address: unassigned switch"
  | Some k -> Short_address.assigned ~switch_number:k ~port

let resolve t a =
  match Short_address.split a with
  | None -> None
  | Some (k, port) -> (
    match switch_of_number t k with
    | Some s -> Some (s, port)
    | None -> None)

let alist t =
  let acc = ref [] in
  for s = Array.length t.numbers - 1 downto 0 do
    if t.numbers.(s) >= 0 then acc := (s, t.numbers.(s)) :: !acc
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>assignment:@,";
  List.iter
    (fun (s, k) -> Format.fprintf ppf "  s%d -> number %d@," s k)
    (alist t);
  Format.fprintf ppf "@]"
