type channel = {
  link : Graph.link_id;
  from_switch : Graph.switch;
  to_switch : Graph.switch;
}

let pp_channel ppf c =
  Format.fprintf ppf "link%d(s%d->s%d)" c.link c.from_switch c.to_switch

type result = Acyclic | Cycle of channel list

let pp_result ppf = function
  | Acyclic -> Format.pp_print_string ppf "acyclic"
  | Cycle cs ->
    Format.fprintf ppf "cycle: %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
         pp_channel)
      cs

(* A channel is a directed half of a non-loop link.  Index 2*link + 0 for
   the a->b direction, +1 for b->a. *)
let channel_index g ~link_id ~from_switch =
  match Graph.link g link_id with
  | None -> None
  | Some l ->
    if Graph.is_loop l then None
    else
      let sa, _ = l.a in
      Some (if from_switch = sa then 2 * link_id else (2 * link_id) + 1)

let channel_of_index g idx =
  let link_id = idx / 2 in
  match Graph.link g link_id with
  | None -> assert false
  | Some l ->
    let sa, _ = l.a and sb, _ = l.b in
    if idx land 1 = 0 then { link = link_id; from_switch = sa; to_switch = sb }
    else { link = link_id; from_switch = sb; to_switch = sa }

let max_channel g = 2 * (Graph.max_link_id g + 1)

(* --- Per-switch edge generation. ---

   Every dependency edge generated at switch [s] runs from a channel
   {e into} [s] to a channel {e out of} [s], and a channel points into
   exactly one switch — so per-switch edge generation touches disjoint
   source channels and can run in parallel without any cross-switch
   deduplication.

   Within one switch both endpoints are determined by port numbers, so
   the edge set is at most [max_ports] bitmasks of [max_ports] bits: for
   each in-port, one int whose bit [q] says "may continue out of port
   [q]".  Setting a bit both deduplicates and replaces the old
   [(c1, c2)] pair-hashtable.

   The parallel fan-out writes those masks straight into preallocated
   call-level buffers indexed by channel (plus a per-switch slice of the
   port->out-channel map): each task's writes are confined to the
   channels into — and the port slice of — its own switch, so the merge
   is the identity and the CSR below is stitched serially from the
   filled buffers with zero intermediate per-switch records. *)

module Arena = Autonet_parallel.Pool.Arena

(* Per-task scratch (port -> in-channel map of the switch being scanned). *)
let slot_task_in = Arena.register ()

(* Call-level buffers, owned by the calling domain's arena and reused
   across epochs (workers write into them during the round; the barrier
   orders those writes before the caller's reads). *)
let slot_mask = Arena.register ()
let slot_head = Arena.register ()
let slot_out = Arena.register ()

(* CSR + DFS scratch, likewise reused across calls. *)
let slot_off = Arena.register ()
let slot_adj = Arena.register ()
let slot_dfs_state = Arena.register ()
let slot_dfs_parent = Arena.register ()
let slot_dfs_sv = Arena.register ()
let slot_dfs_si = Arena.register ()

type switch_edges = {
  se_in : int array;   (* in-channel arriving on port p, or -1 *)
  se_out : int array;  (* out-channel leaving on port p, or -1 *)
  se_mask : int array; (* per in-port: bitmask of continuation out-ports *)
}

(* Resolve each cabled port of [s] to its two channel directions with a
   single link lookup (the old checker resolved the in-link twice per
   table entry). *)
let channel_maps g s =
  let mp = Graph.max_ports g in
  let se_in = Array.make (mp + 1) (-1) in
  let se_out = Array.make (mp + 1) (-1) in
  for p = 1 to mp do
    match Graph.link_at g (s, p) with
    | None -> ()
    | Some l_id -> (
      match Graph.link g l_id with
      | None -> ()
      | Some l ->
        if not (Graph.is_loop l) then begin
          let sa, _ = l.a in
          if s = sa then begin
            se_out.(p) <- 2 * l_id;
            se_in.(p) <- (2 * l_id) + 1
          end
          else begin
            se_out.(p) <- (2 * l_id) + 1;
            se_in.(p) <- 2 * l_id
          end
        end)
  done;
  (se_in, se_out)

(* Fill switch [s]'s share of the call-level buffers: [out_ch] gets the
   port -> out-channel map in the slice [s * (mp+1) ..], [head.(c)] tags
   every channel [c] into [s] with [s], and [mask.(c)] accumulates the
   continuation out-port bitmask for those channels.  All writes are
   confined to data owned by [s], so tasks for distinct switches never
   touch the same cell. *)
let fill_switch_deps g ~mp ~mask ~head ~out_ch spec =
  let s = Tables.switch spec in
  let arena = Arena.get () in
  let se_in = Arena.ints arena slot_task_in ~len:(mp + 1) in
  Array.fill se_in 0 (mp + 1) (-1);
  let base = s * (mp + 1) in
  for p = 1 to mp do
    match Graph.link_at g (s, p) with
    | None -> ()
    | Some l_id -> (
      match Graph.link g l_id with
      | None -> ()
      | Some l ->
        if not (Graph.is_loop l) then begin
          let sa, _ = l.a in
          let c_in =
            if s = sa then begin
              out_ch.(base + p) <- 2 * l_id;
              (2 * l_id) + 1
            end
            else begin
              out_ch.(base + p) <- (2 * l_id) + 1;
              2 * l_id
            end
          in
          se_in.(p) <- c_in;
          head.(c_in) <- s
        end)
  done;
  Tables.iter spec ~f:(fun ~in_port ~dst:_ entry ->
      if (not entry.Tables.broadcast) && in_port > 0 && in_port <= mp then begin
        let c1 = se_in.(in_port) in
        if c1 >= 0 then
          List.iter
            (fun p ->
              if p > 0 && p <= mp && out_ch.(base + p) >= 0 then
                mask.(c1) <- mask.(c1) lor (1 lsl p))
            entry.Tables.ports
      end)

(* Stitch the filled buffers into a CSR adjacency over channels.  Rows
   are walked in ascending channel order and filled in ascending
   out-port order, so the graph (and therefore the cycle witness below)
   is identical however the per-switch fills were scheduled — and
   because rows are visited in CSR order, one running cursor replaces
   the per-row cursor array. *)
let stitch_csr ~arena ~n ~mp ~mask ~head ~out_ch =
  let off = Arena.ints arena slot_off ~len:(n + 1) in
  Array.fill off 0 (n + 1) 0;
  for c = 0 to n - 1 do
    let m = mask.(c) in
    if m <> 0 then begin
      let base = head.(c) * (mp + 1) in
      let deg = ref 0 in
      for q = 1 to mp do
        if m land (1 lsl q) <> 0 && out_ch.(base + q) >= 0 then incr deg
      done;
      off.(c + 1) <- !deg
    end
  done;
  for c = 1 to n do
    off.(c) <- off.(c) + off.(c - 1)
  done;
  let adj = Arena.ints arena slot_adj ~len:(Stdlib.max 1 off.(n)) in
  let cur = ref 0 in
  for c = 0 to n - 1 do
    let m = mask.(c) in
    if m <> 0 then begin
      let base = head.(c) * (mp + 1) in
      for q = 1 to mp do
        if m land (1 lsl q) <> 0 && out_ch.(base + q) >= 0 then begin
          adj.(!cur) <- out_ch.(base + q);
          incr cur
        end
      done
    end
  done;
  (off, adj)

(* Merge per-switch masks into one CSR adjacency over channels.  Rows are
   filled in ascending out-port order, so the graph (and therefore the
   cycle witness below) is identical however the per-switch parts were
   scheduled. *)
let build_csr n per_switch =
  let off = Array.make (n + 1) 0 in
  List.iter
    (fun se ->
      Array.iteri
        (fun p mask ->
          if mask <> 0 then begin
            let c1 = se.se_in.(p) in
            let deg = ref 0 in
            Array.iteri
              (fun q c2 ->
                if c2 >= 0 && mask land (1 lsl q) <> 0 then incr deg)
              se.se_out;
            off.(c1 + 1) <- off.(c1 + 1) + !deg
          end)
        se.se_mask)
    per_switch;
  for c = 1 to n do
    off.(c) <- off.(c) + off.(c - 1)
  done;
  let adj = Array.make off.(n) 0 in
  let cursor = Array.make (n + 1) 0 in
  Array.blit off 0 cursor 0 (n + 1);
  List.iter
    (fun se ->
      Array.iteri
        (fun p mask ->
          if mask <> 0 then begin
            let c1 = se.se_in.(p) in
            Array.iteri
              (fun q c2 ->
                if c2 >= 0 && mask land (1 lsl q) <> 0 then begin
                  adj.(cursor.(c1)) <- c2;
                  cursor.(c1) <- cursor.(c1) + 1
                end)
              se.se_out
          end)
        se.se_mask)
    per_switch;
  (off, adj)

(* Iterative coloring DFS over the CSR: 0 = white, 1 = on stack, 2 =
   done.  Returns the first back-edge cycle found, exactly as the old
   recursive version did — but with an explicit stack, so the depth is
   bounded by memory rather than the native stack (a single dependency
   chain of 100k+ channels used to overflow it). *)
let find_cycle_csr g ~off ~adj n =
  let cap = Stdlib.max n 1 in
  let arena = Arena.get () in
  let state = Arena.ints arena slot_dfs_state ~len:cap in
  Array.fill state 0 cap 0;
  (* [parent], and the stack arrays, are only read after being written
     this call, so stale contents are fine. *)
  let parent = Arena.ints arena slot_dfs_parent ~len:cap in
  let stack_v = Arena.ints arena slot_dfs_sv ~len:cap in
  let stack_i = Arena.ints arena slot_dfs_si ~len:cap in
  let found_v = ref (-1) and found_w = ref (-1) in
  let exception Found in
  try
    for root = 0 to n - 1 do
      if state.(root) = 0 && off.(root + 1) > off.(root) then begin
        state.(root) <- 1;
        stack_v.(0) <- root;
        stack_i.(0) <- off.(root);
        let sp = ref 1 in
        while !sp > 0 do
          let top = !sp - 1 in
          let v = stack_v.(top) in
          let i = stack_i.(top) in
          if i >= off.(v + 1) then begin
            state.(v) <- 2;
            decr sp
          end
          else begin
            stack_i.(top) <- i + 1;
            let w = adj.(i) in
            if state.(w) = 1 then begin
              found_v := v;
              found_w := w;
              raise Found
            end
            else if state.(w) = 0 then begin
              parent.(w) <- v;
              state.(w) <- 1;
              stack_v.(!sp) <- w;
              stack_i.(!sp) <- off.(w);
              incr sp
            end
          end
        done
      end
    done;
    Acyclic
  with Found ->
    (* Walk parents from v back to w to materialize the cycle. *)
    let rec collect acc u =
      if u = !found_w then u :: acc else collect (u :: acc) parent.(u)
    in
    Cycle (List.map (channel_of_index g) (collect [] !found_v))

let check_tables ?pool g specs =
  let n = max_channel g in
  let mp = Graph.max_ports g in
  let ns = Graph.switch_count g in
  let arena = Arena.get () in
  let cap = Stdlib.max n 1 in
  let mask = Arena.ints arena slot_mask ~len:cap in
  Array.fill mask 0 cap 0;
  let head = Arena.ints arena slot_head ~len:cap in
  let out_len = Stdlib.max 1 (ns * (mp + 1)) in
  let out_ch = Arena.ints arena slot_out ~len:out_len in
  Array.fill out_ch 0 out_len (-1);
  (* A given pool is always used, even with one domain or one spec: the
     uniform path keeps the pool's call/item metrics identical for every
     domain count.  Per-spec cost is estimated by the table's entry
     count — scanning entries dominates the fill — so batch boundaries
     follow the actual work, not the switch count.  (With a pool, the
     specs must be for distinct switches, which every caller satisfies:
     tasks rely on per-switch write ownership of the buffers.) *)
  (match pool with
  | Some pool ->
    let arr = Array.of_list specs in
    Autonet_parallel.Pool.parallel_for pool ~n:(Array.length arr)
      ~costs:(fun i -> 1 + Tables.entry_count arr.(i))
      (fun i -> fill_switch_deps g ~mp ~mask ~head ~out_ch arr.(i))
  | None -> List.iter (fill_switch_deps g ~mp ~mask ~head ~out_ch) specs);
  let off, adj = stitch_csr ~arena ~n ~mp ~mask ~head ~out_ch in
  find_cycle_csr g ~off ~adj n

(* --- Order certificate for incremental (delta-epoch) verification. ---

   Rank the members by (tree level, UID); distinct switches get distinct
   ranks because UIDs are unique.  Give the up-direction channel into
   head switch [h] the key [m - 1 - rank h] and the down-direction
   channel into [h] the key [m + rank h].  Every dependency edge a legal
   up*/down* table can generate strictly increases the key:
   - up -> up: the out channel's head is strictly closer to the root
     (smaller level, or equal level and smaller UID — the orientation
     rule), so its rank is smaller and its key larger;
   - up -> down: up keys all lie below [m], down keys at or above it;
   - down -> down: the out channel's head is strictly farther from the
     root, so its rank and key are larger;
   - down -> up gets a decreasing key and fails — as it must, since
     up*/down* forbids it.
   A spec whose every unicast edge increases the key cannot take part in
   a dependency cycle, so if every spec certifies the whole dependency
   graph is acyclic.  The delta path re-checks only rebuilt or patched
   specs against the new epoch's certificate (a reused spec was certified
   under an identical member ranking, so its certification stands) and
   falls back to the full [check_tables] whenever any spec fails. *)

type cert = { cert_rank : int array; cert_members : int }

let certificate g tree =
  let arr = Array.of_list (Spanning_tree.members tree) in
  Array.sort
    (fun a b ->
      let c =
        Int.compare (Spanning_tree.level tree a) (Spanning_tree.level tree b)
      in
      if c <> 0 then c
      else Autonet_net.Uid.compare (Graph.uid g a) (Graph.uid g b))
    arr;
  let rank = Array.make (Graph.switch_count g) (-1) in
  Array.iteri (fun i s -> rank.(s) <- i) arr;
  { cert_rank = rank; cert_members = Array.length arr }

let certifies cert g updown spec =
  let s = Tables.switch spec in
  let mp = Graph.max_ports g in
  let m = cert.cert_members in
  let rank x =
    if x >= 0 && x < Array.length cert.cert_rank then cert.cert_rank.(x)
    else -1
  in
  (* Per-port channel keys.  [has_*] mirrors the edge-generation rule of
     [fill_switch_deps]: any cabled non-loop link carries channels and
     therefore edges, usable or not; but only usable links between
     ranked members get a finite key, so an edge over anything else
     (correctly) fails to certify. *)
  let has_in = Array.make (mp + 1) false in
  let has_out = Array.make (mp + 1) false in
  let in_key = Array.make (mp + 1) min_int in
  let out_key = Array.make (mp + 1) min_int in
  for p = 1 to mp do
    match Graph.link_at g (s, p) with
    | None -> ()
    | Some l_id -> (
      match Graph.link g l_id with
      | None -> ()
      | Some l ->
        if not (Graph.is_loop l) then begin
          has_in.(p) <- true;
          has_out.(p) <- true;
          match Updown.up_end updown l_id with
          | None -> ()
          | Some up ->
            let key_into head =
              let r = rank head in
              if r < 0 then min_int
              else if head = up then m - 1 - r
              else m + r
            in
            let o, _ = Graph.other_end l s in
            in_key.(p) <- key_into s;
            out_key.(p) <- key_into o
        end)
  done;
  let exception Refuted in
  try
    Tables.iter spec ~f:(fun ~in_port ~dst:_ entry ->
        if
          (not entry.Tables.broadcast)
          && in_port > 0 && in_port <= mp
          && has_in.(in_port)
        then begin
          let ki = in_key.(in_port) in
          List.iter
            (fun p ->
              if p > 0 && p <= mp && has_out.(p) then
                if ki = min_int || ki >= out_key.(p) then raise Refuted)
            entry.Tables.ports
        end);
    true
  with Refuted -> false

let check_next_hops g ~switches ~next =
  let n = max_channel g in
  let per_switch =
    List.map
      (fun s ->
        let se_in, se_out = channel_maps g s in
        let mp = Array.length se_in - 1 in
        let se_mask = Array.make (mp + 1) 0 in
        List.iter
          (fun dst ->
            if dst <> s then
              for in_port = 1 to mp do
                if se_in.(in_port) >= 0 then
                  List.iter
                    (fun p ->
                      if p > 0 && p <= mp && se_out.(p) >= 0 then
                        se_mask.(in_port) <- se_mask.(in_port) lor (1 lsl p))
                    (next ~at:s ~in_port:(Some in_port) ~dst)
              done)
          switches;
        { se_in; se_out; se_mask })
      switches
  in
  let off, adj = build_csr n per_switch in
  find_cycle_csr g ~off ~adj n

module Reference = struct
  (* The original checker: cons-list adjacency with a (c1, c2)
     pair-hashtable for deduplication and a recursive coloring DFS.  Kept
     as the correctness oracle and micro-benchmark baseline; its witness
     can differ from the CSR path's (adjacency lists hold edges in
     reversed insertion order), and its recursion depth is bounded by the
     longest dependency chain. *)

  let find_cycle g adj n =
    let state = Array.make n 0 in
    let parent = Array.make n (-1) in
    let exception Found of int * int in
    let rec dfs v =
      state.(v) <- 1;
      List.iter
        (fun w ->
          if state.(w) = 1 then raise (Found (v, w))
          else if state.(w) = 0 then begin
            parent.(w) <- v;
            dfs w
          end)
        adj.(v);
      state.(v) <- 2
    in
    try
      for v = 0 to n - 1 do
        if state.(v) = 0 && adj.(v) <> [] then dfs v
      done;
      Acyclic
    with Found (v, w) ->
      let rec collect acc u =
        if u = w then u :: acc else collect (u :: acc) parent.(u)
      in
      let cycle = collect [] v in
      Cycle (List.map (channel_of_index g) cycle)

  let check_tables g specs =
    let n = max_channel g in
    let adj = Array.make (Stdlib.max n 1) [] in
    let seen = Hashtbl.create 1024 in
    let add_edge c1 c2 =
      if not (Hashtbl.mem seen (c1, c2)) then begin
        Hashtbl.replace seen (c1, c2) ();
        adj.(c1) <- c2 :: adj.(c1)
      end
    in
    List.iter
      (fun spec ->
        let s = Tables.switch spec in
        Tables.fold spec ~init:() ~f:(fun () ~in_port ~dst:_ entry ->
            if (not entry.Tables.broadcast) && in_port <> 0 then
              match Graph.link_at g (s, in_port) with
              | None -> ()
              | Some l_in -> (
                match channel_index g ~link_id:l_in ~from_switch:(
                  match Graph.link g l_in with
                  | Some l -> fst (Graph.other_end l s)
                  | None -> s)
                with
                | None -> ()
                | Some c1 ->
                  List.iter
                    (fun p ->
                      if p <> 0 then
                        match Graph.link_at g (s, p) with
                        | None -> ()
                        | Some l_out -> (
                          match channel_index g ~link_id:l_out ~from_switch:s with
                          | None -> ()
                          | Some c2 -> add_edge c1 c2))
                    entry.Tables.ports)))
      specs;
    find_cycle g adj n
end
