open Autonet_net

type entry = { broadcast : bool; ports : int list }

let discard = { broadcast = true; ports = [] }

let equal_entry a b = a.broadcast = b.broadcast && a.ports = b.ports

let pp_entry ppf { broadcast; ports } =
  Format.fprintf ppf "{%s [%s]}"
    (if broadcast then "bcast" else "alt")
    (String.concat ";" (List.map string_of_int ports))

(* Entries are keyed by the int [(address lsl 4) lor in_port]: ports fit
   in 4 bits (max_ports <= 15, port 0 is the control processor) and
   addresses in 16, exactly the hardware's concatenated index — and an
   unboxed key spares a tuple allocation per probe. *)
let key ~in_port ~addr = (Short_address.to_int addr lsl 4) lor in_port

(* A spec stores the keys below [Array.length dense] in a flat array —
   the assigned-address block plus the constant low addresses, i.e.
   everything the synthesis loop writes per destination — and the rest
   (the four 0xFFFC+ special addresses, or arbitrary addresses fed to
   [of_entries]) in a small hashtable.  The [discard] record doubles as
   the dense array's "absent" sentinel by physical equality: [add_entry]
   never stores an empty-port entry, so no live entry can alias it. *)
type spec = {
  spec_switch : Graph.switch;
  dense : entry array;
  sparse : (int, entry) Hashtbl.t;
  mutable count : int;
}

let make_spec ~switch ~dense_size =
  { spec_switch = switch;
    dense = Array.make dense_size discard;
    sparse = Hashtbl.create 16;
    count = 0 }

(* Covers every key the builder produces for assigned addresses
   ([number lsl 4 lor q] with q < 16) plus the local-switch and one-hop
   rows (addresses 0..15, keys < 256). *)
let dense_size_for assignment =
  let m = Address_assign.max_number assignment in
  if m < 1 then 256 else (m + 1) lsl 8

let switch t = t.spec_switch

let lookup t ~in_port ~dst =
  let k = key ~in_port ~addr:dst in
  if k < Array.length t.dense then t.dense.(k)
  else
    match Hashtbl.find_opt t.sparse k with
    | Some e -> e
    | None -> discard

let entry_count t = t.count

let fold t ~init ~f =
  (* Deterministic iteration order for printing and comparison. *)
  let items = ref [] in
  Hashtbl.iter
    (fun k e -> items := ((k land 0xF, k lsr 4), e) :: !items)
    t.sparse;
  for k = Array.length t.dense - 1 downto 0 do
    let e = t.dense.(k) in
    if e != discard then items := ((k land 0xF, k lsr 4), e) :: !items
  done;
  let items = List.sort (fun (k1, _) (k2, _) -> compare k1 k2) !items in
  List.fold_left
    (fun acc ((p, a), e) ->
      f acc ~in_port:p ~dst:(Short_address.of_int a) e)
    init items

let iter t ~f =
  let dense = t.dense in
  for k = 0 to Array.length dense - 1 do
    let e = dense.(k) in
    if e != discard then
      f ~in_port:(k land 0xF) ~dst:(Short_address.of_int (k lsr 4)) e
  done;
  Hashtbl.iter
    (fun k e -> f ~in_port:(k land 0xF) ~dst:(Short_address.of_int (k lsr 4)) e)
    t.sparse

type route_mode = Minimal_routes | All_legal_routes

(* The in-ports of a switch that can actually receive a packet: the control
   processor, host ports, and ports on usable links. *)
let receiving_ports g updown s =
  let external_ports =
    List.filter_map
      (fun p ->
        match Graph.host_at g (s, p) with
        | Some _ -> Some p
        | None -> (
          match Graph.link_at g (s, p) with
          | Some l when Updown.usable updown l -> Some p
          | Some _ | None -> None))
      (Graph.used_ports g s)
  in
  0 :: external_ports

let is_host_port g s p = p <> 0 && Graph.host_at g (s, p) <> None

let host_ports g s =
  List.filter (fun p -> is_host_port g s p) (Graph.used_ports g s)

let add_entry t ~in_port ~addr e =
  if e.ports <> [] then begin
    let k = key ~in_port ~addr in
    if k < Array.length t.dense then begin
      if t.dense.(k) == discard then t.count <- t.count + 1;
      t.dense.(k) <- e
    end
    else begin
      if not (Hashtbl.mem t.sparse k) then t.count <- t.count + 1;
      Hashtbl.replace t.sparse k e
    end
  end

(* The constant (0x0000, one-hop, loopback) and broadcast rows, shared by
   the fast and reference builders: they are a few dozen entries and were
   never the hot part. *)
let constant_and_broadcast_entries g tree s ~spec ~in_ports =
  List.iter
    (fun p ->
      if is_host_port g s p then begin
        add_entry spec ~in_port:p ~addr:Short_address.local_switch
          { broadcast = false; ports = [ 0 ] };
        add_entry spec ~in_port:p ~addr:Short_address.loopback
          { broadcast = false; ports = [ p ] }
      end)
    in_ports;
  for k = 1 to Graph.max_ports g do
    let addr = Short_address.one_hop ~port:k in
    List.iter
      (fun in_port ->
        if in_port = 0 then
          (* From the control processor: out the numbered local port, when
             that port is cabled to something that can hear us. *)
          (match Graph.link_at g (s, k) with
          | Some _ ->
            add_entry spec ~in_port ~addr { broadcast = false; ports = [ k ] }
          | None -> ())
        else add_entry spec ~in_port ~addr { broadcast = false; ports = [ 0 ] })
      in_ports
  done;
  (* --- Broadcast flooding over the spanning tree. --- *)
  let children_ports =
    List.map (fun (p, _, _) -> p) (Spanning_tree.children tree s)
  in
  let parent_port =
    match Spanning_tree.parent tree s with
    | Some pr -> Some pr.my_port
    | None -> None
  in
  let local_delivery addr_cls =
    match addr_cls with
    | `All -> 0 :: host_ports g s
    | `Switches -> [ 0 ]
    | `Hosts -> host_ports g s
  in
  let tree_child_port p = List.mem p children_ports in
  List.iter
    (fun (addr, cls) ->
      List.iter
        (fun in_port ->
          let entry_ports =
            if in_port = 0 || is_host_port g s in_port then
              (* Origination: head for the root, or flood if we are it. *)
              match parent_port with
              | Some pp -> [ pp ]
              | None -> children_ports @ local_delivery cls
            else if tree_child_port in_port then
              match parent_port with
              | Some pp -> [ pp ]
              | None ->
                (* Root: flood down every child (including the arrival
                   child, whose subtree has not seen the packet on the way
                   down) plus local delivery. *)
                children_ports @ local_delivery cls
            else if parent_port = Some in_port then
              children_ports @ local_delivery cls
            else [] (* non-tree link: broadcasts never travel here *)
          in
          (* The sender receives its own broadcast too (at the root the
             origination row includes the arrival port; elsewhere the copy
             returns with the down-phase flood): hosts filter by UID, as
             the paper's receiving-host rules require. *)
          let ports = List.sort_uniq Int.compare entry_ports in
          add_entry spec ~in_port ~addr { broadcast = true; ports })
        in_ports)
    [ (Short_address.broadcast_all, `All);
      (Short_address.broadcast_switches, `Switches);
      (Short_address.broadcast_hosts, `Hosts) ]

(* Per-task scratch for the builder, drawn from the per-domain arena so a
   pool worker reuses it across every switch of every epoch: the in-port
   list as a flat array and the arrival-phase selector per in-port. *)
module Arena = Autonet_parallel.Pool.Arena

let slot_ip = Arena.register ()
let slot_sel = Arena.register ()

let build ?(mode = Minimal_routes) g tree updown routes assignment s =
  if not (Spanning_tree.mem tree s) then
    invalid_arg "Tables.build: switch not in the configured component";
  let spec = make_spec ~switch:s ~dense_size:(dense_size_for assignment) in
  let in_ports = receiving_ports g updown s in
  let next_hops =
    match mode with
    | Minimal_routes -> Routes.next_hops routes
    | All_legal_routes -> Routes.all_next_hops routes
  in
  (* --- Assigned unicast destinations. ---
     Every port address of every member switch gets an entry at remote
     switches (the route depends only on the destination switch), so a
     host plugged in after this reconfiguration is already reachable from
     afar; delivery at the destination switch itself happens only for the
     control processor and the ports known to hold hosts ("if the address
     is not in use the packet is discarded").

     The route out of [s] depends only on the arrival phase and the
     destination switch, so the (at most two) next-hop entries per
     destination are shared across the whole 16-address block, and each
     (in-port, address) pair costs one store into the dense array. *)
  (* The in-port array and the per-in-port phase selector come from the
     per-domain arena (reused across tasks and epochs).  The selector is
     a property of the in-port alone — it does not depend on the
     destination — so it is computed once here instead of once per
     destination as the old [entry_of_in] refill did. *)
  let arena = Arena.get () in
  let nip = List.length in_ports in
  let ip = Arena.ints arena slot_ip ~len:(Stdlib.max 1 nip) in
  List.iteri (fun i p -> ip.(i) <- p) in_ports;
  let sel = Arena.ints arena slot_sel ~len:(Stdlib.max 1 nip) in
  for i = 0 to nip - 1 do
    sel.(i) <-
      (match Routes.phase_of_arrival routes ~at:s ~in_port:ip.(i) with
      | Routes.Up -> 0
      | Routes.Down -> 1)
  done;
  let dense = spec.dense in
  List.iter
    (fun d ->
      if s = d then begin
        let hosts_of_d = host_ports g d in
        for q = 0 to Graph.max_ports g do
          if q = 0 || List.mem q hosts_of_d then begin
            let addr = Address_assign.address assignment d q in
            let e = { broadcast = false; ports = [ q ] } in
            for i = 0 to nip - 1 do
              add_entry spec ~in_port:ip.(i) ~addr e
            done
          end
        done
      end
      else begin
        let entry_for phase =
          let hops = next_hops ~at:s ~phase ~dst:d in
          let ports = List.sort_uniq Int.compare (List.map fst hops) in
          { broadcast = false; ports }
        in
        let e_up = entry_for Routes.Up and e_down = entry_for Routes.Down in
        if e_up.ports <> [] || e_down.ports <> [] then begin
          (* [address d 0] = number lsl 4; the whole block lives below
             [dense_size_for assignment] by construction. *)
          let base =
            Short_address.to_int (Address_assign.address assignment d 0)
          in
          for q = 0 to Graph.max_ports g do
            let k_addr = (base lor q) lsl 4 in
            for i = 0 to nip - 1 do
              let e = if sel.(i) = 0 then e_up else e_down in
              if e.ports <> [] then begin
                let k = k_addr lor ip.(i) in
                if dense.(k) == discard then spec.count <- spec.count + 1;
                dense.(k) <- e
              end
            done
          done
        end
      end)
    (Spanning_tree.members tree);
  constant_and_broadcast_entries g tree s ~spec ~in_ports;
  spec

let patch ?(mode = Minimal_routes) g updown routes assignment ~prev
    ~switch:s ~removed_numbers ~added_dests =
  (* [s] is the switch's index in [g]; [prev.spec_switch] was its index in
     the previous epoch's graph, which membership changes may have
     shifted.  The copied table content is keyed by switch number, which
     the delta classifier proved stable, so only the identity needs
     remapping. *)
  let spec =
    { spec_switch = s;
      dense = Array.copy prev.dense;
      sparse = Hashtbl.copy prev.sparse;
      count = prev.count }
  in
  (* Strip every entry of a departed switch number: a fresh build of this
     switch writes nothing at those addresses.  Assigned numbers are >= 1,
     so their 256-key blocks never overlap the constant and one-hop rows
     below key 256, nor the sparse 0xFFFC+ specials. *)
  List.iter
    (fun number ->
      for q = 0 to 15 do
        let base_k = ((number lsl 4) lor q) lsl 4 in
        for p = 0 to 15 do
          let k = base_k lor p in
          if k < Array.length spec.dense then begin
            if spec.dense.(k) != discard then begin
              spec.dense.(k) <- discard;
              spec.count <- spec.count - 1
            end
          end
          else if Hashtbl.mem spec.sparse k then begin
            Hashtbl.remove spec.sparse k;
            spec.count <- spec.count - 1
          end
        done
      done)
    removed_numbers;
  (* Add the address blocks of brand-new destinations, exactly as [build]
     renders a remote destination.  [add_entry] keeps the spec well-formed
     even when a new number lies beyond the copied dense block: the
     overflow lands in the sparse table, which lookups cannot tell apart. *)
  if added_dests <> [] then begin
    let in_ports = receiving_ports g updown s in
    let next_hops =
      match mode with
      | Minimal_routes -> Routes.next_hops routes
      | All_legal_routes -> Routes.all_next_hops routes
    in
    let sel =
      List.map
        (fun p -> (p, Routes.phase_of_arrival routes ~at:s ~in_port:p))
        in_ports
    in
    List.iter
      (fun d ->
        if d = s then
          invalid_arg "Tables.patch: a switch cannot gain itself as a dest";
        let entry_for phase =
          let hops = next_hops ~at:s ~phase ~dst:d in
          { broadcast = false;
            ports = List.sort_uniq Int.compare (List.map fst hops) }
        in
        let e_up = entry_for Routes.Up and e_down = entry_for Routes.Down in
        if e_up.ports <> [] || e_down.ports <> [] then begin
          let base =
            Short_address.to_int (Address_assign.address assignment d 0)
          in
          for q = 0 to Graph.max_ports g do
            let addr = Short_address.of_int (base lor q) in
            List.iter
              (fun (in_port, ph) ->
                let e =
                  match ph with Routes.Up -> e_up | Routes.Down -> e_down
                in
                add_entry spec ~in_port ~addr e)
              sel
          done
        end)
      added_dests
  end;
  spec

let equal_spec a b =
  a.spec_switch = b.spec_switch
  && a.count = b.count
  &&
  let canon t =
    fold t ~init:[] ~f:(fun acc ~in_port ~dst e ->
        ((in_port, Short_address.to_int dst), e) :: acc)
  in
  canon a = canon b

let of_entries ~switch entries_list =
  let spec =
    { spec_switch = switch;
      dense = [||];
      sparse = Hashtbl.create (Stdlib.max 8 (2 * List.length entries_list));
      count = 0 }
  in
  List.iter
    (fun ((p, a), e) -> add_entry spec ~in_port:p ~addr:a e)
    entries_list;
  spec

let build_all ?mode ?pool g tree updown routes assignment =
  let members = Spanning_tree.members tree in
  match pool with
  | Some pool ->
    (* Force the graph's lazily-built adjacency cache (and keep it forced)
       before fanning out: workers must only read the graph.  One-domain
       pools run the map serially inside [parallel_map_array]; going
       through the pool regardless keeps its call/item metrics identical
       for every domain count.

       A switch's build cost scales with its receiving-port count (the
       inner loops run once per in-port for every destination block), so
       the cabled/host port count drives the batch boundaries: hub-heavy
       topologies no longer leave one domain holding the whole hub. *)
    (match members with m :: _ -> ignore (Graph.degree g m) | [] -> ());
    let arr = Array.of_list members in
    Array.to_list
      (Autonet_parallel.Pool.parallel_map_array pool
         ~costs:(fun i -> 1 + List.length (Graph.used_ports g arr.(i)))
         (fun s -> build ?mode g tree updown routes assignment s)
         arr)
  | None ->
    List.map (fun s -> build ?mode g tree updown routes assignment s) members

module Reference = struct
  (* The original builder, kept as the correctness oracle and benchmark
     baseline: it recomputes the arrival phase and the next-hop set from
     the list-based {!Routes.Reference} machinery for every
     (in-port, destination-address) pair. *)

  let build ?(mode = Minimal_routes) g tree updown routes assignment s =
    if not (Spanning_tree.mem tree s) then
      invalid_arg "Tables.build: switch not in the configured component";
    let spec = make_spec ~switch:s ~dense_size:(dense_size_for assignment) in
    let add = add_entry spec in
    let in_ports = receiving_ports g updown s in
    let next_hops =
      match mode with
      | Minimal_routes -> Routes.Reference.next_hops routes
      | All_legal_routes -> Routes.Reference.all_next_hops routes
    in
    List.iter
      (fun d ->
        let hosts_of_d = host_ports g d in
        for q = 0 to Graph.max_ports g do
          let addr = Address_assign.address assignment d q in
          List.iter
            (fun in_port ->
              if s = d then begin
                if q = 0 || List.mem q hosts_of_d then
                  add ~in_port ~addr { broadcast = false; ports = [ q ] }
              end
              else begin
                let phase =
                  Routes.Reference.phase_of_arrival routes ~at:s ~in_port
                in
                let hops = next_hops ~at:s ~phase ~dst:d in
                let ports = List.sort_uniq Int.compare (List.map fst hops) in
                add ~in_port ~addr { broadcast = false; ports }
              end)
            in_ports
        done)
      (Spanning_tree.members tree);
    constant_and_broadcast_entries g tree s ~spec ~in_ports;
    spec

  let build_all ?mode g tree updown routes assignment =
    List.map
      (fun s -> build ?mode g tree updown routes assignment s)
      (Spanning_tree.members tree)
end
