(** The Autonet spanning tree (paper sections 4.1 and 6.6.1).

    The distributed reconfiguration algorithm converges on a unique
    spanning tree per connected component: the root is the switch with the
    smallest UID, levels are hop distances from the root, and ties between
    candidate parents are broken first by parent UID and then by the
    child-side port number.  This module computes that tree directly from a
    {!Graph.t}; the distributed protocol in the [autopilot] library must
    converge to exactly this tree, which the tests check. *)

open Autonet_net

module Position : sig
  (** A switch's claimed position in the forming tree, as carried by
      tree-position packets.  The ordering below is the paper's "better
      parent link" rule. *)

  type t = {
    root : Uid.t;        (** UID of the claimed root *)
    level : int;         (** 0 at the root *)
    parent : Uid.t;      (** parent UID; the root claims itself *)
    parent_port : int;   (** child-side port to the parent; 0 at the root *)
  }

  val root_position : Uid.t -> t
  (** The initial position of a switch that believes itself the root. *)

  val compare : t -> t -> int
  (** Lexicographic on (root, level, parent, parent_port): smaller is
      better. *)

  val better : t -> t -> bool
  (** [better a b] iff [a] is strictly preferable to [b]. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

type parent = {
  link : Graph.link_id;
  my_port : Graph.port;          (** child-side port *)
  parent_switch : Graph.switch;
  parent_port : Graph.port;      (** parent-side port *)
}

type t

val compute : Graph.t -> member:Graph.switch -> t
(** The spanning tree of the connected component containing [member].
    Runs on the packed adjacency fast path ({!Graph.iter_neighbors})
    with flat int scratch arrays; {!Reference.compute} is the retained
    list-based oracle it is cross-checked against. *)

val compute_all : Graph.t -> t list
(** One tree per connected component, ordered by root switch index. *)

val root : t -> Graph.switch
val members : t -> Graph.switch list
val mem : t -> Graph.switch -> bool

val level : t -> Graph.switch -> int
(** Raises [Invalid_argument] for a non-member. *)

val level_i : t -> Graph.switch -> int
(** Allocation- and exception-free variant of {!level}: the switch's
    level, or [-1] for a non-member (or out-of-range index).  The inner
    loops of {!Updown.orient} use this. *)

val parent : t -> Graph.switch -> parent option
(** [None] exactly for the root. *)

val children : t -> Graph.switch -> (Graph.port * Graph.link_id * Graph.switch) list
(** Tree children with the connecting link and the local (parent-side)
    port, in increasing child switch order. *)

val is_tree_link : t -> Graph.link_id -> bool

val position : t -> Graph.t -> Graph.switch -> Position.t
(** The stable position of a member switch, as the distributed protocol
    would report it. *)

val depth : t -> int
(** Maximum level over members. *)

val pp : Graph.t -> Format.formatter -> t -> unit

module Reference : sig
  (** The original list-based implementation, kept as the correctness
      oracle for the fast path and as the micro-benchmark baseline.
      Produces a value observationally identical to {!compute}'s. *)

  val compute : Graph.t -> member:Graph.switch -> t
end
