(** Up*/down* link orientation (paper sections 4.2 and 6.6.4).

    Each usable switch-to-switch link is assigned a direction: its "up" end
    is the end whose switch is closer to the spanning-tree root, with ties
    broken toward the switch with the lower UID.  Loop links (both ends on
    the same switch) are excluded from the configuration.  The directed
    links form no loops, which is what makes up*/down* routes
    deadlock-free. *)

type t

val orient : Graph.t -> Spanning_tree.t -> t
(** Orientation of all non-loop links between member switches of the given
    tree's component.  Sizes its per-link array with
    {!Graph.max_link_id} and iterates links with {!Graph.iter_links},
    so no intermediate link list is allocated. *)

val reorient :
  Graph.t -> Spanning_tree.t ->
  prev:t -> old_of_new_link:int array -> new_of_old_switch:int array ->
  t
(** Delta-path variant of {!orient}: links that survive from the previous
    epoch ([old_of_new_link.(new_id) = old_id], [-1] for fresh links) keep
    their previous orientation with the up-end switch index translated
    through [new_of_old_switch]; fresh links are oriented from scratch.
    Sound only under {!Delta.classify}'s preconditions — every surviving
    switch keeps its UID, membership and tree level — under which the
    result is identical to a fresh {!orient}. *)

val up_end : t -> Graph.link_id -> Graph.switch option
(** The switch at the "up" end, or [None] when the link is excluded (loop
    link, removed link, or outside the component). *)

val up_end_i : t -> Graph.link_id -> int
(** Allocation-free variant of {!up_end}: the up-end switch index, or
    [-1] when the link is excluded.  The inner loops of {!Routes} use
    this. *)

val usable : t -> Graph.link_id -> bool

val goes_up : t -> Graph.link -> from:Graph.switch -> bool
(** [goes_up t l ~from] is true when traversing [l] out of switch [from]
    moves toward the up end.  Raises [Invalid_argument] when the link is
    excluded or does not touch [from]. *)

val usable_links : t -> Graph.link_id list
(** Ascending link ids. *)

val verify_acyclic : Graph.t -> t -> bool
(** True when the directed links form no cycle — the invariant the
    orientation must establish.  Exposed for property tests. *)

val pp : Graph.t -> Format.formatter -> t -> unit

module Reference : sig
  (** The original list-walking implementation (max link id recomputed by
      folding over [Graph.links]), kept as the correctness oracle and
      micro-benchmark baseline. *)

  val orient : Graph.t -> Spanning_tree.t -> t
end
