open Autonet_net

type t = {
  ups : int array; (* indexed by link id; -1 = excluded from the config *)
}

(* Shared orientation rule: the up end of a non-loop link between two tree
   members is the end closer to the root, ties toward the smaller UID. *)
let up_of g tree (l : Graph.link) =
  let sa, _ = l.a and sb, _ = l.b in
  if Graph.is_loop l || (not (Spanning_tree.mem tree sa))
     || not (Spanning_tree.mem tree sb)
  then -1
  else
    let la = Spanning_tree.level tree sa and lb = Spanning_tree.level tree sb in
    if la < lb then sa
    else if lb < la then sb
    else if Uid.compare (Graph.uid g sa) (Graph.uid g sb) <= 0 then sa
    else sb

(* Same rule as [up_of], but on {!Spanning_tree.level_i} so each endpoint
   costs one bounds-checked array read instead of a membership test plus a
   raising [level] lookup.  Loop links fall out of the [sa <> sb] guard
   without calling [Graph.is_loop]. *)
let up_of_i g tree (l : Graph.link) =
  let sa, _ = l.a and sb, _ = l.b in
  if sa = sb then -1
  else
    let la = Spanning_tree.level_i tree sa in
    if la < 0 then -1
    else
      let lb = Spanning_tree.level_i tree sb in
      if lb < 0 then -1
      else if la < lb then sa
      else if lb < la then sb
      else if Uid.compare (Graph.uid g sa) (Graph.uid g sb) <= 0 then sa
      else sb

let orient g tree =
  let ups = Array.make (Graph.max_link_id g + 1) (-1) in
  Graph.iter_links g (fun l -> ups.(l.id) <- up_of_i g tree l);
  { ups }

let reorient g tree ~prev ~old_of_new_link ~new_of_old_switch =
  let ups = Array.make (Graph.max_link_id g + 1) (-1) in
  let n_map = Array.length old_of_new_link in
  Graph.iter_links g (fun l ->
      let ol = if l.id < n_map then old_of_new_link.(l.id) else -1 in
      let mapped =
        if ol < 0 || ol >= Array.length prev.ups then -1
        else
          let ou = prev.ups.(ol) in
          if ou < 0 || ou >= Array.length new_of_old_switch then -1
          else new_of_old_switch.(ou)
      in
      ups.(l.id) <-
        (if mapped >= 0 then mapped
         (* Fresh link, or one the previous epoch excluded: orient it from
            scratch.  Both ends survive under the delta preconditions, so
            the rule sees the same levels and UIDs [orient] would. *)
         else up_of_i g tree l));
  { ups }

let up_end_i t id =
  if id < 0 || id >= Array.length t.ups then -1 else t.ups.(id)

let up_end t id =
  let u = up_end_i t id in
  if u < 0 then None else Some u

let usable t id = up_end_i t id >= 0

let goes_up t (l : Graph.link) ~from =
  match up_end_i t l.id with
  | -1 -> invalid_arg "Updown.goes_up: link not in the configuration"
  | up ->
    let sa, _ = l.a and sb, _ = l.b in
    if from <> sa && from <> sb then
      invalid_arg "Updown.goes_up: switch not on this link";
    (* Traversal moves toward the other end; it goes up iff the other end
       is the up end.  Loop links never reach here. *)
    let dest = if from = sa then sb else sa in
    dest = up

let usable_links t =
  let acc = ref [] in
  for id = Array.length t.ups - 1 downto 0 do
    if t.ups.(id) >= 0 then acc := id :: !acc
  done;
  !acc

let verify_acyclic g t =
  (* DFS for a cycle in the digraph whose arcs point from the down end to
     the up end of each usable link. *)
  let n = Graph.switch_count g in
  let adj = Array.make n [] in
  List.iter
    (fun id ->
      match Graph.link g id with
      | None -> ()
      | Some l -> begin
        match up_end t id with
        | None -> ()
        | Some up ->
          let sa, _ = l.a and sb, _ = l.b in
          let down = if up = sa then sb else sa in
          adj.(down) <- up :: adj.(down)
      end)
    (usable_links t);
  let state = Array.make n 0 (* 0 unvisited, 1 in progress, 2 done *) in
  let rec has_cycle v =
    if state.(v) = 1 then true
    else if state.(v) = 2 then false
    else begin
      state.(v) <- 1;
      let found = List.exists has_cycle adj.(v) in
      state.(v) <- 2;
      found
    end
  in
  not (List.exists has_cycle (Graph.switches g))

let pp g ppf t =
  Format.fprintf ppf "@[<v>orientation:@,";
  List.iter
    (fun id ->
      match (Graph.link g id, up_end t id) with
      | Some l, Some up ->
        let sa, pa = l.a and sb, pb = l.b in
        Format.fprintf ppf "  link %d: s%d.p%d -- s%d.p%d, up end s%d@," id sa
          pa sb pb up
      | _, _ -> ())
    (usable_links t);
  Format.fprintf ppf "@]"

module Reference = struct
  (* The original implementation: recomputes the maximum link id with a
     fold over the freshly allocated [Graph.links] list and walks that
     list again to orient.  Kept as the oracle and benchmark baseline. *)

  let orient g tree =
    let max_id =
      List.fold_left
        (fun acc (l : Graph.link) -> Stdlib.max acc l.id)
        (-1) (Graph.links g)
    in
    let ups = Array.make (max_id + 1) (-1) in
    List.iter (fun (l : Graph.link) -> ups.(l.id) <- up_of g tree l) (Graph.links g);
    { ups }
end
