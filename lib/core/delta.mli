(** Incremental reconfiguration: the delta fast path.

    Every fault used to pay a full epoch — whole-network spanning tree,
    every route BFS, every forwarding table, a full deadlock check.  The
    paper's headline metric is reconfiguration time, and for the common
    faults (a non-tree link dying or coming back, a leaf subtree severed
    or rejoining) almost all of that work recomputes state that cannot
    have changed.

    This module is the classification-and-reuse layer over the committed
    state of the previous epoch.  {!classify} compares the freshly
    computed spanning tree and address assignment of the new epoch
    against the committed ones and either proves the fault
    {e tree-preserving} — every surviving switch keeps its UID-aligned
    tree level, parent and switch number — or reports it structural.
    For tree-preserving faults {!apply} then reuses everything the proof
    covers and recomputes only the affected pieces: touched links are
    re-oriented through {!Updown.reorient}, per-destination route BFSes
    re-run only when unseated ({!Routes.recompute}), tables are rebuilt
    only for switches whose minimal next-hop sets actually changed
    (cost-weighted over the domain pool at the root), and deadlock
    freedom is re-verified incrementally through the
    {!Deadlock.certificate} order argument with a mandatory fallback to
    the full {!Deadlock.check_tables}.

    Correctness never depends on the classifier being clever, only
    sound: the tree and assignment are always recomputed from scratch on
    the new graph (they are microseconds against the hundreds of
    milliseconds of table synthesis), any mismatch at all is declared
    structural, and a structural verdict sends the caller down the
    unchanged full-epoch path. *)

type committed = {
  c_graph : Graph.t;          (** the epoch's report graph *)
  c_tree : Spanning_tree.t;
  c_updown : Updown.t;
  c_routes : Routes.t;
  c_assignment : Address_assign.t;
  c_own : Tables.spec;        (** the committing switch's own table *)
  c_all : Tables.spec array option;
      (** every member's table, indexed by switch — kept by the root
          (which builds them anyway to verify the epoch), [None]
          elsewhere *)
  c_cert : Deadlock.cert option;
      (** root only: the epoch's order certificate, present iff every
          committed table certified under it *)
}
(** Everything a later epoch may reuse, committed at the end of an
    epoch by {!commit_full} (full path) or {!apply} (delta path). *)

type change = {
  old_of_new : int array;
      (** previous switch index of new switch [s], or -1 *)
  new_of_old : int array;  (** inverse of [old_of_new] *)
  link_of_old : int array;
      (** previous id of new link [l] (aligned on (UID, port) endpoint
          pairs), or -1 for a fresh link *)
  forced_dirty : bool array;
      (** switches that must rebuild regardless of route changes:
          endpoints of changed links, host-port changes *)
  added_switches : Graph.switch list;  (** new indices, ascending *)
  removed_numbers : int list;
      (** switch numbers that left with removed switches, ascending *)
  changed_links : int;  (** links added plus links removed *)
}

type classification = Tree_preserving of change | Structural of string

val enabled : unit -> bool
(** The [AUTONET_DELTA] knob: on unless the variable is set to [0],
    [false], [off] or [no].  Read per call so tests can toggle it. *)

val classify :
  prev:committed ->
  graph:Graph.t -> tree:Spanning_tree.t -> assignment:Address_assign.t ->
  me:Graph.switch ->
  classification
(** Decide whether the new epoch ([graph], with its freshly computed
    [tree] and [assignment], seen from switch [me]) is a tree-preserving
    change of [prev].  [Structural] carries the first reason found and
    obliges the caller to run the full epoch. *)

type stats = {
  st_rebuilt : int;   (** tables rebuilt from scratch *)
  st_patched : int;   (** tables membership-patched via {!Tables.patch} *)
  st_reused : int;    (** tables reused verbatim *)
  st_dests : int;     (** destinations whose route BFS re-ran *)
  st_deadlock_full : bool;
      (** the incremental certificate failed and the full
          {!Deadlock.check_tables} ran instead *)
  st_verdict : Deadlock.result option;  (** root only *)
}

val apply :
  ?pool:Autonet_parallel.Pool.t ->
  ?clock:(unit -> float) ->
  ?on_span:(string -> float -> unit) ->
  prev:committed ->
  graph:Graph.t -> tree:Spanning_tree.t -> assignment:Address_assign.t ->
  me:Graph.switch ->
  change ->
  committed * stats
(** Run the delta epoch described by a {!Tree_preserving} change.  The
    returned [committed] is observationally identical — same routes,
    same table contents, same root deadlock verdict — to what the full
    path would commit for this epoch; the chaos oracle and the fast-path
    property tests enforce exactly that.  [pool] fans the table rebuilds
    (and a fallback deadlock check) across domains at the root.  [clock]
    and [on_span] report wall-clock sub-phase durations
    ([delta_routes], [delta_tables], [delta_deadlock]) without making
    this library depend on [unix]. *)

val commit_full :
  graph:Graph.t -> tree:Spanning_tree.t -> updown:Updown.t ->
  routes:Routes.t -> assignment:Address_assign.t ->
  own:Tables.spec -> all:Tables.spec list option ->
  committed
(** Package a full epoch's results for reuse by later delta epochs.
    [all] is the root's [build_all] output ([None] elsewhere); the root
    additionally computes the epoch's order certificate here, which is
    what lets the next delta epoch verify deadlock freedom
    incrementally. *)
