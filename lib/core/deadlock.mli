(** Channel-dependency-graph deadlock analysis.

    With flow-controlled FIFOs and no packet discard, a routing function is
    deadlock-free iff its channel dependency graph is acyclic (Dally &
    Seitz).  Channels are the directed halves of each switch-to-switch
    link; channel [c1] depends on [c2] when some forwarding-table entry
    lets a packet that arrived over [c1] continue over [c2].  Host links
    never appear in cycles: hosts do not forward, and Autonet host
    controllers may not send [Stop], so a switch-to-host channel always
    drains.

    Up*/down* tables must always be acyclic (property-tested); the
    unrestricted shortest-path baseline is generally not, which is
    experiment E7. *)

type channel = {
  link : Graph.link_id;
  from_switch : Graph.switch;
  to_switch : Graph.switch;
}

val pp_channel : Format.formatter -> channel -> unit

type result =
  | Acyclic
  | Cycle of channel list
      (** A witness cycle: each channel depends on the next, and the last
          on the first. *)

val check_tables :
  ?pool:Autonet_parallel.Pool.t -> Graph.t -> Tables.spec list -> result
(** Analyze the dependencies induced by unicast (alternative-port) entries
    of the given forwarding tables.  Per-spec edge generation touches
    disjoint source channels, so with [pool] it fans out one task per
    spec; the merged dependency graph — and the cycle witness — is
    identical to the serial result for any domain count.  The DFS is
    iterative, so dependency chains longer than the native stack are
    fine. *)

type cert
(** An acyclicity order certificate: a ranking of the member switches
    under which every dependency edge a legal up*/down* table generates
    strictly increases a per-channel key.  Built once per epoch from the
    spanning tree. *)

val certificate : Graph.t -> Spanning_tree.t -> cert

val certifies : cert -> Graph.t -> Updown.t -> Tables.spec -> bool
(** Whether every unicast dependency edge of [spec] strictly increases
    the certificate's channel key.  If this holds for every spec of an
    epoch, the dependency graph is acyclic ({!check_tables} would return
    [Acyclic]) — the one-sided check the delta path runs on just the
    rebuilt and patched tables, falling back to {!check_tables} on any
    failure.  Tables built by {!Tables.build} always certify; a [false]
    is possible for hand-made or corrupted specs and proves nothing by
    itself. *)

val check_next_hops :
  Graph.t ->
  switches:Graph.switch list ->
  next:(at:Graph.switch -> in_port:Graph.port option -> dst:Graph.switch -> Graph.port list) ->
  result
(** Generic form for routing functions not expressed as table specs: [next]
    gives the candidate out-ports at [at] for packets bound to [dst] that
    arrived on [in_port] ([None] for locally injected packets). *)

val pp_result : Format.formatter -> result -> unit

module Reference : sig
  (** The original list-based checker — a [(c1, c2)] pair-hashtable for
      deduplication, cons-list adjacency and a recursive DFS — kept as
      the correctness oracle and micro-benchmark baseline.  Agrees with
      {!check_tables} on acyclicity; a cycle witness may list the same
      cycle starting from a different rotation when a channel has several
      outgoing dependencies.  The recursion is stack-bounded: do not feed
      it dependency chains beyond ~100k channels. *)

  val check_tables : Graph.t -> Tables.spec list -> result
end
