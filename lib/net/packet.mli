(** Autonet packets (paper section 6.8).

    The wire format is a 32-byte Autonet header (destination and source
    short addresses, type, 26 bytes of encryption information), an opaque
    body, and an 8-byte CRC trailer.  For client packets ([typ = Client])
    the body is an encapsulated Ethernet datagram; control protocols
    (reconfiguration, SRP, connectivity probes) use their own type values
    and define their own body codecs on top of {!Wire}. *)

type typ =
  | Client           (** type 1: encapsulated Ethernet datagram *)
  | Reconfiguration  (** type 2: tree-position / topology-report messages *)
  | Srp              (** type 3: source-routed debugging protocol *)
  | Connectivity     (** type 4: connectivity test and reply *)
  | Other of int

val typ_to_int : typ -> int
val typ_of_int : int -> typ
val equal_typ : typ -> typ -> bool
val pp_typ : Format.formatter -> typ -> unit

type trace = {
  tr_origin : int;  (** originating fault id (0: boot) *)
  tr_parent : int;  (** the sending switch *)
  tr_hop : int;  (** the sender's hop count from the epoch initiator *)
}
(** Causal trace context for reconfiguration messages.  This is a
    simulator-only sideband: it never reaches the wire — {!encode},
    {!decode}, {!wire_size} and {!equal} all ignore it — so attaching
    it perturbs neither timing nor behaviour, and a decoded packet
    always carries [None]. *)

type t = {
  dst : Short_address.t;
  src : Short_address.t;
  typ : typ;
  enc_info : string;
      (** the 26-byte encryption information field (paper 6.8): all zeroes
          for cleartext; the receiving controller reads it to decide
          whether and how to decrypt *)
  body : string;
  trace : trace option;  (** sideband causal context; not wire data *)
}

val make :
  ?enc_info:string ->
  ?trace:trace ->
  dst:Short_address.t -> src:Short_address.t -> typ:typ -> body:string ->
  unit -> t
(** [enc_info] defaults to cleartext (all zeroes); it must be exactly
    {!encryption_info_bytes} long.  [trace] defaults to [None]. *)

val encryption_info_bytes : int
(** 26. *)

val cleartext_info : string

val is_encrypted : t -> bool
(** True when the encryption information is not all zeroes. *)

val client :
  ?enc_info:string -> dst:Short_address.t -> src:Short_address.t -> Eth.t -> t
(** Wrap an Ethernet datagram as a client packet. *)

val eth_of_client : t -> Eth.t
(** Raises {!Wire.Malformed} if the packet is not a well-formed client
    packet. *)

val header_bytes : int
(** 32: short addresses, type, encryption information. *)

val trailer_bytes : int
(** 8: the CRC field. *)

val wire_size : t -> int
(** Total bytes on the wire: header + body + trailer. *)

val max_broadcast_wire_size : int
(** Largest packet that may use a broadcast short address: a maximal
    Ethernet packet plus the Autonet header and trailer (about 1550 bytes,
    paper section 6.2). *)

val encode : t -> string
(** Full wire encoding including a valid CRC trailer. *)

val decode : string -> t * bool
(** [decode s] parses a wire encoding; the boolean reports whether the CRC
    was valid.  Raises {!Wire.Truncated} on short input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
