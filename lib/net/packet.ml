type typ = Client | Reconfiguration | Srp | Connectivity | Other of int

let typ_to_int = function
  | Client -> 1
  | Reconfiguration -> 2
  | Srp -> 3
  | Connectivity -> 4
  | Other n -> n

let typ_of_int = function
  | 1 -> Client
  | 2 -> Reconfiguration
  | 3 -> Srp
  | 4 -> Connectivity
  | n -> Other n

let equal_typ a b = typ_to_int a = typ_to_int b

let pp_typ ppf t =
  match t with
  | Client -> Format.pp_print_string ppf "client"
  | Reconfiguration -> Format.pp_print_string ppf "reconfig"
  | Srp -> Format.pp_print_string ppf "srp"
  | Connectivity -> Format.pp_print_string ppf "connectivity"
  | Other n -> Format.fprintf ppf "other(%d)" n

type trace = { tr_origin : int; tr_parent : int; tr_hop : int }

type t = {
  dst : Short_address.t;
  src : Short_address.t;
  typ : typ;
  enc_info : string;
  body : string;
  trace : trace option;
}

let encryption_info_bytes = 26
let cleartext_info = String.make encryption_info_bytes '\000'

let make ?(enc_info = cleartext_info) ?trace ~dst ~src ~typ ~body () =
  if String.length enc_info <> encryption_info_bytes then
    invalid_arg "Packet.make: encryption info must be 26 bytes";
  { dst; src; typ; enc_info; body; trace }

let is_encrypted t = not (String.equal t.enc_info cleartext_info)

let client ?enc_info ~dst ~src eth =
  let w = Wire.Writer.create () in
  Eth.encode w eth;
  make ?enc_info ~dst ~src ~typ:Client ~body:(Wire.Writer.contents w) ()

let eth_of_client t =
  if not (equal_typ t.typ Client) then
    raise (Wire.Malformed "eth_of_client: not a client packet");
  (try Eth.decode (Wire.Reader.of_string t.body)
   with Wire.Truncated -> raise (Wire.Malformed "eth_of_client: short body"))

let header_bytes = 2 + 2 + 2 + encryption_info_bytes
let trailer_bytes = 8

let wire_size t = header_bytes + String.length t.body + trailer_bytes

let max_broadcast_wire_size =
  header_bytes + Eth.header_bytes + Eth.max_ethernet_payload + trailer_bytes

let encode t =
  let w = Wire.Writer.create ~initial_size:(wire_size t) () in
  Wire.Writer.u16 w (Short_address.to_int t.dst);
  Wire.Writer.u16 w (Short_address.to_int t.src);
  Wire.Writer.u16 w (typ_to_int t.typ);
  Wire.Writer.string w t.enc_info;
  Wire.Writer.string w t.body;
  let covered = Wire.Writer.contents w in
  let crc = Crc32.string covered in
  let w2 = Wire.Writer.create ~initial_size:trailer_bytes () in
  Wire.Writer.u32 w2 0;
  Wire.Writer.u32 w2 (Int32.to_int crc land 0xFFFF_FFFF);
  covered ^ Wire.Writer.contents w2

let decode s =
  let total = String.length s in
  if total < header_bytes + trailer_bytes then raise Wire.Truncated;
  let r = Wire.Reader.of_string s in
  let dst = Short_address.of_int (Wire.Reader.u16 r) in
  let src = Short_address.of_int (Wire.Reader.u16 r) in
  let typ = typ_of_int (Wire.Reader.u16 r) in
  let enc_info = Wire.Reader.take r encryption_info_bytes in
  let body_len = total - header_bytes - trailer_bytes in
  let body = Wire.Reader.take r body_len in
  let (_ : int) = Wire.Reader.u32 r in
  let crc_stored = Wire.Reader.u32 r in
  let crc_computed =
    Crc32.string (String.sub s 0 (total - trailer_bytes))
  in
  let ok = crc_stored = Int32.to_int crc_computed land 0xFFFF_FFFF in
  ({ dst; src; typ; enc_info; body; trace = None }, ok)

let equal a b =
  Short_address.equal a.dst b.dst
  && Short_address.equal a.src b.src
  && equal_typ a.typ b.typ
  && String.equal a.enc_info b.enc_info
  && String.equal a.body b.body

let pp ppf t =
  Format.fprintf ppf "pkt{%a -> %a %a len=%d}" Short_address.pp t.src
    Short_address.pp t.dst pp_typ t.typ (wire_size t)
