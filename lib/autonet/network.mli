(** A whole simulated Autonet: one {!Autonet_autopilot.Fabric} plus an
    Autopilot per switch, with convergence detection, fault injection and
    the reconfiguration-time measurement of paper section 6.6.5.

    This is the top-level entry point most examples use:

    {[
      let t = Network.create (Builders.src_service_lan ()) in
      Network.start t;
      match Network.run_until_converged t with
      | Some _ -> (* the LAN is up; inject faults, attach hosts, measure *)
      | None -> failwith "did not converge"
    ]} *)

open Autonet_core
open Autonet_autopilot

type t

type telemetry_mode = [ `Off | `Disabled | `On ]
(** [`Off]: no registry or timeline exist — the instrumentation is
    compiled out of the pilots' paths entirely (the bench baseline).
    [`Disabled] (the default): instruments exist but count nothing until
    {!set_telemetry_enabled}; each hit costs a load and a branch.
    [`On]: counting from the first event. *)

val create :
  ?params:Params.t ->
  ?seed:int64 ->
  ?telemetry:telemetry_mode ->
  ?span_clock:(unit -> float) ->
  Autonet_topo.Builders.t ->
  t
(** [params] defaults to {!Params.tuned}; [seed] (default 1) drives clock
    skews and any stochastic behaviour.  [span_clock] replaces the wall
    clock the delta compute spans are measured on; inject a
    deterministic tick and the recorded spans are byte-identical across
    runs and domain counts. *)

val engine : t -> Autonet_sim.Engine.t
val fabric : t -> Fabric.t
val graph : t -> Graph.t
val params : t -> Params.t
val rng : t -> Autonet_sim.Rng.t

val autopilot : t -> Graph.switch -> Autopilot.t

val start : t -> unit
(** Boot every switch. *)

val now : t -> Autonet_sim.Time.t

val run_for : t -> Autonet_sim.Time.t -> unit
(** Advance the simulation by the given duration. *)

(** {1 Convergence} *)

val converged : t -> bool
(** Every live connected component of powered switches is fully
    configured, on a single epoch, with identical complete topology
    reports. *)

val run_until_converged :
  ?timeout:Autonet_sim.Time.t -> t -> Autonet_sim.Time.t option
(** Run until {!converged}; returns the absolute convergence time, or
    [None] at [timeout] (default 60 simulated seconds). *)

(** {1 Faults} *)

val apply_fault : t -> Autonet_topo.Faults.event -> unit

val schedule_faults : t -> Autonet_topo.Faults.schedule -> unit
(** Install the schedule on the simulation clock. *)

(** {1 Measurement} *)

type reconfiguration_measure = {
  detection : Autonet_sim.Time.t;
      (** fault injection to the first epoch start *)
  reconfiguration : Autonet_sim.Time.t;
      (** first epoch start to the last table load (the paper's figure) *)
  total : Autonet_sim.Time.t;
  epochs_used : int;
      (** how many epochs were started before convergence *)
  control_packets : int;
  control_bytes : int;
}

val measure_reconfiguration :
  ?timeout:Autonet_sim.Time.t ->
  t ->
  trigger:(t -> unit) ->
  reconfiguration_measure option
(** From a converged network, apply [trigger] (e.g. a fault) and measure
    the reconfiguration that follows. *)

val pp_measure : Format.formatter -> reconfiguration_measure -> unit

(** {1 Telemetry} *)

val metrics : t -> Autonet_telemetry.Metrics.t option
(** The registry shared by every pilot; [None] in [`Off] mode. *)

val timeline : t -> Autonet_telemetry.Timeline.t option
(** The reconfiguration phase timeline; [None] in [`Off] mode. *)

val causal : t -> Autonet_telemetry.Causal.t option
(** The causal trace store shared by every pilot — per-switch epoch
    milestones, propagation parentage and flight recorders; [None] in
    [`Off] mode. *)

val set_telemetry_enabled : t -> bool -> unit
(** Flip the registry, the timeline and the causal store (no-op in
    [`Off] mode). *)

val telemetry_snapshot : t -> Autonet_telemetry.Metrics.snapshot
(** The registry's snapshot, with the engine and fabric gauges
    ([engine.events_executed], [engine.max_queue_length],
    [fabric.packets_sent], [fabric.bytes_sent]) refreshed first, plus
    the wave-shape gauges ([causal.wave_depth], [causal.wave_fanout],
    [causal.wave_critical_hops]) from the most recent fully-healed
    epoch.  Empty in [`Off] mode. *)

(** {1 Inspection} *)

val merged_log : t -> (Autonet_sim.Time.t * string * string) list
(** All switches' event logs, normalized and merged (section 6.7). *)

val verify_against_reference : t -> bool
(** After convergence: does every switch's loaded state agree with the
    pure reference computation on the live physical topology?  (Spanning
    tree, addresses; the cornerstone correctness check.) *)

val live_graph : t -> Graph.t
(** The physical graph minus failed links and powered-off switches. *)

val live_components : t -> Graph.switch list list
(** Connected components of the live graph restricted to powered switches;
    each component ascends, components ordered by smallest member. *)

val loaded_spec : t -> Graph.switch -> Tables.spec
(** The forwarding table currently loaded in the switch hardware,
    re-expressed as a table spec — what {!Deadlock.check_tables} and
    {!Verify} can analyze.  Reflects the real dataplane state, including
    host ports enabled after the last reconfiguration. *)
