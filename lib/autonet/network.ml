open Autonet_net
open Autonet_core
open Autonet_autopilot
module Engine = Autonet_sim.Engine
module Time = Autonet_sim.Time
module Rng = Autonet_sim.Rng
module Metrics = Autonet_telemetry.Metrics
module Timeline = Autonet_telemetry.Timeline
module Causal = Autonet_telemetry.Causal

type telemetry_mode = [ `Off | `Disabled | `On ]

type t = {
  engine : Engine.t;
  fabric : Fabric.t;
  net_graph : Graph.t;
  net_params : Params.t;
  net_rng : Rng.t;
  pilots : Autopilot.t array;
  net_metrics : Metrics.t option;
  net_timeline : Timeline.t option;
  net_causal : Causal.t option;
}

let create ?(params = Params.tuned) ?(seed = 1L) ?(telemetry = `Disabled)
    ?span_clock (topo : Autonet_topo.Builders.t) =
  let engine = Engine.create () in
  let net_rng = Rng.create ~seed in
  let fabric =
    Fabric.create ~engine ~graph:topo.Autonet_topo.Builders.graph ~params
      ~rng:(Rng.split net_rng)
  in
  let g = topo.Autonet_topo.Builders.graph in
  let switches = Graph.switch_count g in
  let net_metrics, net_timeline, net_causal =
    match telemetry with
    | `Off -> (None, None, None)
    | `Disabled ->
      (Some (Metrics.create ()), Some (Timeline.create ()),
       Some (Causal.create ~switches ()))
    | `On ->
      (Some (Metrics.create ~enabled:true ()),
       Some (Timeline.create ~enabled:true ()),
       Some (Causal.create ~enabled:true ~switches ()))
  in
  (* Register the snapshot-time gauges up front so a disabled snapshot
     lists the same instruments (at zero) as an enabled one. *)
  (match net_metrics with
  | Some m ->
    ignore (Metrics.gauge m "engine.events_executed");
    ignore (Metrics.gauge m "engine.max_queue_length");
    ignore (Metrics.gauge m "fabric.packets_sent");
    ignore (Metrics.gauge m "fabric.bytes_sent");
    ignore (Metrics.gauge m "causal.wave_depth");
    ignore (Metrics.gauge m "causal.wave_fanout");
    ignore (Metrics.gauge m "causal.wave_critical_hops")
  | None -> ());
  let pilots =
    Array.init switches (fun s ->
        (* Real switch clocks drift; skews make the merged-log tooling
           meaningful. *)
        let clock_skew = Time.us (Rng.int net_rng 200) - Time.us 100 in
        Autopilot.create ~fabric ~switch:s ~clock_skew ?metrics:net_metrics
          ?timeline:net_timeline ?causal:net_causal ?span_clock ())
  in
  { engine; fabric; net_graph = g; net_params = params; net_rng; pilots;
    net_metrics; net_timeline; net_causal }

let engine t = t.engine
let fabric t = t.fabric
let graph t = t.net_graph
let params t = t.net_params
let rng t = t.net_rng
let autopilot t s = t.pilots.(s)
let now t = Engine.now t.engine

(* --- Telemetry --- *)

let metrics t = t.net_metrics
let timeline t = t.net_timeline
let causal t = t.net_causal

let set_telemetry_enabled t v =
  (match t.net_metrics with Some m -> Metrics.set_enabled m v | None -> ());
  (match t.net_causal with Some c -> Causal.set_enabled c v | None -> ());
  match t.net_timeline with Some tl -> Timeline.set_enabled tl v | None -> ()

let telemetry_snapshot t =
  match t.net_metrics with
  | None -> []
  | Some m ->
    Metrics.set_gauge
      (Metrics.gauge m "engine.events_executed")
      (Engine.events_executed t.engine);
    Metrics.set_gauge
      (Metrics.gauge m "engine.max_queue_length")
      (Engine.max_queue_length t.engine);
    let fs = Fabric.stats t.fabric in
    Metrics.set_gauge
      (Metrics.gauge m "fabric.packets_sent")
      fs.Fabric.packets_sent;
    Metrics.set_gauge (Metrics.gauge m "fabric.bytes_sent") fs.Fabric.bytes_sent;
    (* Wave-shape gauges from the most recent fully-healed epoch. *)
    (match Option.bind t.net_causal Causal.last_complete with
    | Some w ->
      Metrics.set_gauge (Metrics.gauge m "causal.wave_depth") w.Causal.w_depth;
      Metrics.set_gauge (Metrics.gauge m "causal.wave_fanout") w.Causal.w_fanout;
      Metrics.set_gauge
        (Metrics.gauge m "causal.wave_critical_hops")
        (Stdlib.max 0 (List.length w.Causal.w_critical - 1))
    | None -> ());
    Metrics.snapshot m

let mark_detection t =
  match t.net_timeline with
  | None -> ()
  | Some tl ->
    Timeline.mark tl ~time:(now t) ~epoch:(-1L) ~tid:(-1) Timeline.Detection

let start t = Array.iter Autopilot.start t.pilots

let run_for t dt = Engine.run t.engine ~until:(Time.add (now t) dt)

(* --- Live topology --- *)

let live_graph t =
  let g = Graph.copy t.net_graph in
  List.iter
    (fun (l : Graph.link) ->
      let sa, _ = l.a and sb, _ = l.b in
      if
        Fabric.link_failed t.fabric l.id
        || (not (Autopilot.powered t.pilots.(sa)))
        || not (Autopilot.powered t.pilots.(sb))
      then Graph.disconnect g l.id)
    (Graph.links t.net_graph);
  g

(* --- Convergence --- *)

let live_components t =
  let g = live_graph t in
  Graph.components g
  |> List.filter_map (fun comp ->
         let powered = List.filter (fun s -> Autopilot.powered t.pilots.(s)) comp in
         if powered = [] then None else Some powered)

(* The configured report must reflect the live switch-to-switch topology of
   the component — a network still running on a pre-fault configuration is
   not converged.  Host ports are compared leniently: plugging a host in or
   out does not reconfigure the network (paper 6.5.3). *)
let report_matches_live live comp r =
  List.for_all
    (fun s ->
      match Topology_report.find r (Graph.uid live s) with
      | None -> false
      | Some d ->
        let live_links =
          List.sort compare
            (List.map
               (fun (p, _, peer, pp) ->
                 (p, Uid.to_int (Graph.uid live peer), pp))
               (Graph.neighbors live s))
        in
        let report_links =
          let acc = ref [] in
          Array.iteri
            (fun p desc ->
              match desc with
              | Topology_report.Switch_link { peer; peer_port } ->
                acc := (p, Uid.to_int peer, peer_port) :: !acc
              | Topology_report.Unused | Topology_report.Host_port -> ())
            d.Topology_report.ports;
          List.sort compare !acc
        in
        live_links = report_links)
    comp

let component_converged t live comp =
  List.for_all (fun s -> Autopilot.configured t.pilots.(s)) comp
  &&
  match comp with
  | [] -> true
  | first :: rest -> (
    let e0 = Autopilot.epoch t.pilots.(first) in
    match Autopilot.complete_report t.pilots.(first) with
    | None -> false
    | Some r0 ->
      Topology_report.size r0 = List.length comp
      && report_matches_live live comp r0
      && List.for_all
           (fun s ->
             Epoch.equal (Autopilot.epoch t.pilots.(s)) e0
             &&
             match Autopilot.complete_report t.pilots.(s) with
             | Some r -> Topology_report.equal r r0
             | None -> false)
           rest)

let converged t =
  let live = live_graph t in
  match live_components t with
  | [] -> false
  | comps -> List.for_all (component_converged t live) comps

let run_until_converged ?(timeout = Time.s 60) t =
  let deadline = Time.add (now t) timeout in
  let slice = Time.ms 2 in
  let rec loop () =
    if converged t then Some (now t)
    else if now t >= deadline then None
    else begin
      Engine.run t.engine ~until:(Time.min deadline (Time.add (now t) slice));
      loop ()
    end
  in
  loop ()

(* --- Faults --- *)

let apply_fault t event =
  (* The injection instant anchors the timeline's detection phase: the
     interval from here to the first epoch start is what the monitors and
     skeptics took to notice. *)
  mark_detection t;
  (* It also seeds a causal wave origin: epochs the fault provokes trace
     their heal latency back to this instant. *)
  (match t.net_causal with
  | Some c ->
    let label =
      match event with
      | Autonet_topo.Faults.Link_down l -> Printf.sprintf "link_down:%d" l
      | Autonet_topo.Faults.Link_up l -> Printf.sprintf "link_up:%d" l
      | Autonet_topo.Faults.Switch_down s -> Printf.sprintf "switch_down:%d" s
      | Autonet_topo.Faults.Switch_up s -> Printf.sprintf "switch_up:%d" s
    in
    Causal.note_fault c ~time:(now t) ~label
  | None -> ());
  match event with
  | Autonet_topo.Faults.Link_down l -> Fabric.fail_link t.fabric l
  | Autonet_topo.Faults.Link_up l -> Fabric.repair_link t.fabric l
  | Autonet_topo.Faults.Switch_down s -> Autopilot.power_off t.pilots.(s)
  | Autonet_topo.Faults.Switch_up s -> Autopilot.start t.pilots.(s)

let schedule_faults t schedule =
  List.iter
    (fun { Autonet_topo.Faults.at; event } ->
      ignore
        (Engine.schedule_at t.engine ~time:at (fun () -> apply_fault t event)))
    (Autonet_topo.Faults.sort schedule)

(* --- Loaded-state inspection --- *)

(* Reconstruct a [Tables.spec] from the forwarding table actually loaded
   in the switch hardware.  This is deliberately *not* the spec the
   Autopilot computed: invariant checkers (the chaos oracle) want to walk
   and deadlock-check the table the dataplane would really use, including
   late host-port enables. *)
let loaded_spec t s =
  let module FT = Autonet_switch.Forwarding_table in
  let module PV = Autonet_switch.Port_vector in
  let ft = Autopilot.forwarding_table t.pilots.(s) in
  let entries = ref [] in
  for in_port = FT.max_ports ft downto 0 do
    List.iter
      (fun (addr, (e : FT.entry)) ->
        entries :=
          ( (in_port, addr),
            { Tables.broadcast = e.FT.broadcast;
              ports = PV.to_list e.FT.vector } )
          :: !entries)
      (List.rev (FT.rows_of ft ~in_port))
  done;
  Tables.of_entries ~switch:s !entries

(* --- Measurement --- *)

type reconfiguration_measure = {
  detection : Time.t;
  reconfiguration : Time.t;
  total : Time.t;
  epochs_used : int;
  control_packets : int;
  control_bytes : int;
}

let measure_reconfiguration ?(timeout = Time.s 60) t ~trigger =
  let before = Array.map Autopilot.stats t.pilots in
  let fabric_before = Fabric.stats t.fabric in
  let t0 = now t in
  mark_detection t;
  trigger t;
  match run_until_converged ~timeout t with
  | None -> None
  | Some t_end ->
    let first_epoch_start = ref None in
    let last_configured = ref t0 in
    let epochs = ref 0 in
    Array.iteri
      (fun i pilot ->
        let s = Autopilot.stats pilot in
        let delta =
          s.Autopilot.reconfigurations_started
          - before.(i).Autopilot.reconfigurations_started
        in
        if delta > 0 then begin
          epochs := Stdlib.max !epochs delta;
          match s.Autopilot.last_epoch_started_at with
          | Some at ->
            (* The stat records the *latest* epoch start; the measurement
               wants the first one after the trigger, so track the minimum
               over switches, which is the initiator's first start. *)
            first_epoch_start :=
              Some
                (match !first_epoch_start with
                | None -> at
                | Some cur -> Time.min cur at)
          | None -> ()
        end;
        match s.Autopilot.last_configured_at with
        | Some at when at > t0 -> last_configured := Time.max !last_configured at
        | _ -> ())
      t.pilots;
    let fabric_after = Fabric.stats t.fabric in
    let first = Option.value ~default:t0 !first_epoch_start in
    Some
      { detection = Time.sub first t0;
        reconfiguration = Time.sub !last_configured first;
        total = Time.sub t_end t0;
        epochs_used = !epochs;
        control_packets =
          fabric_after.Fabric.packets_sent - fabric_before.Fabric.packets_sent;
        control_bytes =
          fabric_after.Fabric.bytes_sent - fabric_before.Fabric.bytes_sent }

let pp_measure ppf m =
  Format.fprintf ppf
    "detection %a, reconfiguration %a, total %a (%d epochs, %d pkts, %d bytes)"
    Time.pp m.detection Time.pp m.reconfiguration Time.pp m.total m.epochs_used
    m.control_packets m.control_bytes

(* --- Inspection --- *)

let merged_log t =
  Event_log.merge
    (Array.to_list
       (Array.mapi
          (fun i pilot ->
            (Printf.sprintf "s%d" i, Autopilot.event_log pilot))
          t.pilots))

let verify_against_reference t =
  let g = live_graph t in
  List.for_all
    (fun comp ->
      match comp with
      | [] -> true
      | member :: _ ->
        let tree = Spanning_tree.compute g ~member in
        List.for_all
          (fun s ->
            let pilot = t.pilots.(s) in
            Autopilot.configured pilot
            && Spanning_tree.Position.equal (Autopilot.position pilot)
                 (Spanning_tree.position tree g s)
            &&
            match Autopilot.complete_report pilot with
            | Some r ->
              Topology_report.size r = List.length (Spanning_tree.members tree)
            | None -> false)
          comp)
    (live_components t)
