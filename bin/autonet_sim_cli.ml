(* autonet-sim: run a whole simulated Autonet from the command line — boot
   it, optionally inject faults on a schedule, and report convergence,
   reconfiguration measurements and (optionally) the merged event log or
   an SRP probe of a switch.

     dune exec bin/autonet_sim.exe -- boot --topo torus:3,3
     dune exec bin/autonet_sim.exe -- fail-link --topo src --params naive
     dune exec bin/autonet_sim.exe -- crash --topo src --switch 7 --log
     dune exec bin/autonet_sim.exe -- srp --topo torus:3,3 --route 1,2 *)

open Autonet_core
module B = Autonet_topo.Builders
module N = Autonet.Network
module F = Autonet_topo.Faults
module AP = Autonet_autopilot.Autopilot
module Messages = Autonet_autopilot.Messages
module Fabric = Autonet_autopilot.Fabric
module Params = Autonet_autopilot.Params
module Time = Autonet_sim.Time
module Chaos = Autonet_chaos.Chaos
module Fuzz = Autonet_chaos.Fuzz
module Metrics = Autonet_telemetry.Metrics
module Timeline = Autonet_telemetry.Timeline
module Causal = Autonet_telemetry.Causal
module Json = Autonet_telemetry.Json
module Report = Autonet_analysis.Report
open Cmdliner

let build_topo spec seed hosts =
  let rng = Autonet_sim.Rng.create ~seed:(Int64.of_int seed) in
  let base =
    match String.split_on_char ':' spec with
    | [ "src" ] -> B.src_service_lan ()
    | [ "line"; n ] -> B.line ~n:(int_of_string n) ()
    | [ "ring"; n ] -> B.ring ~n:(int_of_string n) ()
    | [ "torus"; rc ] -> (
      match String.split_on_char ',' rc with
      | [ r; c ] -> B.torus ~rows:(int_of_string r) ~cols:(int_of_string c) ()
      | _ -> invalid_arg "torus:ROWS,COLS")
    | [ "random"; ne ] -> (
      match String.split_on_char ',' ne with
      | [ n; e ] ->
        B.random_connected ~rng ~n:(int_of_string n)
          ~extra_links:(int_of_string e) ()
      | _ -> invalid_arg "random:N,EXTRA")
    | _ -> invalid_arg (spec ^ ": expected src | line:N | ring:N | torus:R,C | random:N,E")
  in
  if hosts > 0 then B.attach_hosts base ~per_switch:hosts else base

let make_net spec seed hosts params_name =
  let params =
    match Params.preset params_name with
    | Some p -> p
    | None -> invalid_arg (params_name ^ ": expected naive | tuned | fast")
  in
  let net = N.create ~params ~seed:(Int64.of_int seed) (build_topo spec seed hosts) in
  N.start net;
  net

let boot_and_report net =
  match N.run_until_converged ~timeout:(Time.s 300) net with
  | Some at ->
    Format.printf "converged at %a; reference check %b@." Time.pp at
      (N.verify_against_reference net);
    true
  | None ->
    Format.printf "DID NOT CONVERGE within 300 simulated seconds@.";
    false

let print_log net t0 =
  Format.printf "@.merged event log:@.";
  List.iter
    (fun (ts, who, msg) ->
      if ts >= t0 then
        Format.printf "  [+%a] %s: %s@." Time.pp (Time.sub ts t0) who msg)
    (N.merged_log net)

let cmd_boot spec seed hosts params_name show_log =
  let net = make_net spec seed hosts params_name in
  ignore (boot_and_report net);
  if show_log then print_log net Time.zero

let measure net trigger show_log =
  let t0 = N.now net in
  (match N.measure_reconfiguration ~timeout:(Time.s 300) net ~trigger with
  | Some m -> Format.printf "%a@." N.pp_measure m
  | None -> Format.printf "did not reconverge@.");
  Format.printf "reference check: %b@." (N.verify_against_reference net);
  if show_log then print_log net t0

let cmd_fail_link spec seed hosts params_name link show_log =
  let net = make_net spec seed hosts params_name in
  if boot_and_report net then begin
    let links = Graph.links (N.graph net) in
    let l = List.nth links (link mod List.length links) in
    Format.printf "failing link %d...@." l.Graph.id;
    measure net
      (fun net -> N.apply_fault net (F.Link_down l.Graph.id))
      show_log
  end

let cmd_crash spec seed hosts params_name switch show_log =
  let net = make_net spec seed hosts params_name in
  if boot_and_report net then begin
    Format.printf "powering off switch %d...@." switch;
    measure net (fun net -> N.apply_fault net (F.Switch_down switch)) show_log
  end

let cmd_srp spec seed hosts params_name route =
  (* Source-routed probe: inject an SRP Get_state at switch 0's control
     processor and print the reply fetched over the given port route. *)
  let net = make_net spec seed hosts params_name in
  if boot_and_report net then begin
    let ports =
      if route = "" then []
      else List.map int_of_string (String.split_on_char ',' route)
    in
    let got = ref None in
    (* Attach a host-less observer: reuse the fabric by sending from the
       control processor of switch 0 and catching the response in its
       event log is awkward; instead send the request and scan for the
       response with a temporary receive hook at switch 0's autopilot via
       the SRP response terminating there. *)
    let fabric = N.fabric net in
    let msg =
      Messages.Srp_request
        { route = ports; reply_route = []; request = Messages.Get_state }
    in
    (* Send out the first hop from switch 0. *)
    (match ports with
    | [] -> Format.printf "empty route: probing switch 0 itself@."
    | p :: _ -> Format.printf "probing via ports [%s] starting out port %d@." route p);
    ignore got;
    (match ports with
    | [] -> ()
    | first :: rest ->
      Fabric.switch_send fabric ~from:0 ~port:first
        (Messages.to_packet
           (Messages.Srp_request
              { route = rest; reply_route = []; request = Messages.Get_state }));
      ignore msg);
    N.run_for net (Time.ms 100);
    (* The response terminated at switch 0's control processor; its event
       log records it. *)
    let log = AP.event_log (N.autopilot net 0) in
    List.iter
      (fun e ->
        Format.printf "  s0 log: %s@." (Autonet_autopilot.Event_log.message e))
      (let es = Autonet_autopilot.Event_log.entries log in
       let n = List.length es in
       List.filteri (fun i _ -> i >= n - 5) es);
    (* Also print the state of the probed switch directly. *)
    let target =
      List.fold_left
        (fun at p ->
          match Graph.link_at (N.graph net) (at, p) with
          | Some l_id -> (
            match Graph.link (N.graph net) l_id with
            | Some l -> fst (Graph.other_end l at)
            | None -> at)
          | None -> at)
        0 ports
    in
    let ap = N.autopilot net target in
    Format.printf "switch %d: %a, configured %b, number %d@." target
      Epoch.pp (AP.epoch ap) (AP.configured ap)
      (Option.value ~default:(-1) (AP.switch_number ap))
  end

(* --- Telemetry --- *)

(* Deterministic span clock: one microsecond per call.  Compute spans
   measured on it are byte-identical across runs and domain counts, so
   the telemetry and trace smoke rules can cmp full stdout without
   pinning AUTONET_DELTA=0. *)
let tick_clock () =
  let c = ref 0 in
  fun () ->
    incr c;
    float_of_int !c *. 1e-6

let write_trace_json tl path =
  let s = Json.to_string (Timeline.to_trace_json tl) in
  if path = "-" then print_endline s
  else begin
    let oc = open_out path in
    output_string oc s;
    output_char oc '\n';
    close_out oc;
    (* stderr: stdout must stay byte-comparable across domain counts even
       when the trace file name encodes the domain count. *)
    Format.eprintf "wrote %s@." path
  end

let parse_fault net spec =
  match String.split_on_char ':' spec with
  | [ "none" ] -> None
  | [ "link"; n ] ->
    let links = Graph.links (N.graph net) in
    let l = List.nth links (int_of_string n mod List.length links) in
    Some (F.Link_down l.Graph.id)
  | [ "switch"; n ] -> Some (F.Switch_down (int_of_string n))
  | _ -> invalid_arg (spec ^ ": expected none | link:N | switch:N")

let cmd_telemetry spec seed hosts params_name fault show_metrics json spans
    check =
  let params =
    match Params.preset params_name with
    | Some p -> p
    | None -> invalid_arg (params_name ^ ": expected naive | tuned | fast")
  in
  let net =
    N.create ~params ~seed:(Int64.of_int seed) ~telemetry:`On
      ~span_clock:(tick_clock ())
      (build_topo spec seed hosts)
  in
  N.start net;
  if not (boot_and_report net) then exit 1;
  (match parse_fault net fault with
  | None -> ()
  | Some ev ->
    Format.printf "triggering %s...@." fault;
    (match
       N.measure_reconfiguration ~timeout:(Time.s 300) net
         ~trigger:(fun net -> N.apply_fault net ev)
     with
    | Some m -> Format.printf "%a@." N.pp_measure m
    | None ->
      Format.printf "did not reconverge@.";
      exit 1));
  let tl =
    match N.timeline net with Some tl -> tl | None -> assert false
  in
  Report.print (Timeline.phase_report tl);
  if Timeline.spans tl <> [] then Report.print (Timeline.span_report tl);
  if show_metrics then print_string (Metrics.render (N.telemetry_snapshot net));
  if json then
    print_endline
      (Json.to_string
         (Json.Obj
            [ ("metrics", Metrics.to_json (N.telemetry_snapshot net));
              ("trace", Timeline.to_trace_json tl) ]));
  (match spans with None -> () | Some path -> write_trace_json tl path);
  if check then begin
    (* The smoke contract: what we emit must re-parse, and the phase spans
       must nest inside their epoch and sum to its duration. *)
    let fail msg =
      Format.printf "telemetry check: %s@." msg;
      exit 1
    in
    (match Json.parse (Json.to_string (Timeline.to_trace_json tl)) with
    | Error e -> fail ("trace JSON does not parse: " ^ e)
    | Ok j -> (
      match Timeline.validate_trace j with
      | Error e -> fail e
      | Ok () -> ()));
    (match
       Json.parse (Json.to_string (Metrics.to_json (N.telemetry_snapshot net)))
     with
    | Error e -> fail ("metrics JSON does not parse: " ^ e)
    | Ok _ -> ());
    let complete =
      List.length
        (List.filter
           (fun e -> e.Timeline.es_complete)
           (Timeline.epochs tl))
    in
    if complete = 0 then fail "no complete epoch in the timeline";
    Format.printf "telemetry check: ok (%d complete epochs)@." complete
  end

(* --- Causal tracing --- *)

let write_causal_trace_json cz path =
  let s = Json.to_string (Causal.to_trace_json cz) in
  if path = "-" then print_endline s
  else begin
    let oc = open_out path in
    output_string oc s;
    output_char oc '\n';
    close_out oc;
    (* stderr, like write_trace_json: stdout must stay byte-comparable
       across domain counts even when the file name encodes one. *)
    Format.eprintf "wrote %s@." path
  end

let cmd_trace spec seed hosts params_name fault json spans check =
  let params =
    match Params.preset params_name with
    | Some p -> p
    | None -> invalid_arg (params_name ^ ": expected naive | tuned | fast")
  in
  let net =
    N.create ~params ~seed:(Int64.of_int seed) ~telemetry:`On
      ~span_clock:(tick_clock ())
      (build_topo spec seed hosts)
  in
  N.start net;
  if not (boot_and_report net) then exit 1;
  (match parse_fault net fault with
  | None -> ()
  | Some ev ->
    Format.printf "triggering %s...@." fault;
    (match
       N.measure_reconfiguration ~timeout:(Time.s 300) net
         ~trigger:(fun net -> N.apply_fault net ev)
     with
    | Some m -> Format.printf "%a@." N.pp_measure m
    | None ->
      Format.printf "did not reconverge@.";
      exit 1));
  let cz = match N.causal net with Some c -> c | None -> assert false in
  if json then
    print_endline (Json.to_string (Causal.to_json cz))
  else
    List.iter
      (fun w -> Format.printf "%a@." Causal.pp_wave w)
      (Causal.waves cz);
  (match spans with
  | None -> ()
  | Some path -> write_causal_trace_json cz path);
  if check then begin
    (* The smoke contract: what we emit must re-parse, and the last
       healed wave must be a complete, well-formed propagation forest —
       every configured switch exactly once, every join via a valid
       parent hop. *)
    let fail msg =
      Format.printf "trace check: %s@." msg;
      exit 1
    in
    (match Json.parse (Json.to_string (Causal.to_json cz)) with
    | Error e -> fail ("causal JSON does not parse: " ^ e)
    | Ok _ -> ());
    match Causal.last_complete cz with
    | None -> fail "no complete wave"
    | Some w ->
      (match Causal.validate_wave w with
      | Error e -> fail e
      | Ok () -> ());
      let configured =
        List.filter
          (fun s -> AP.configured (N.autopilot net s))
          (Graph.switches (N.graph net))
      in
      (* w_nodes carries one entry per switch, ascending — so a plain
         list compare is the exactly-once check. *)
      let in_wave = List.map (fun n -> n.Causal.n_switch) w.Causal.w_nodes in
      if in_wave <> configured then
        fail
          (Printf.sprintf "wave covers %d switch(es), %d configured"
             (List.length in_wave) (List.length configured));
      Format.printf "trace check: ok (epoch %Ld, %d switches, depth %d)@."
        w.Causal.w_epoch (List.length in_wave) w.Causal.w_depth
  end

(* --- Chaos campaigns --- *)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let print_fuzz_corpus entries =
  List.iteri
    (fun i (e : Fuzz.entry) ->
      Format.printf "corpus %04d seed=0x%016Lx items=%02d viol=%s@." i
        e.Fuzz.e_seed
        (List.length e.Fuzz.e_schedule)
        (match e.Fuzz.e_violations with
        | [] -> "-"
        | vs -> String.concat "," vs))
    entries

(* One coverage-guided (or, with [blind], blind-sampling) fuzz run in this
   process; the per-entry corpus listing and the optional corpus file are
   both deterministic in the seed, whatever AUTONET_DOMAINS says. *)
let fuzz_here config ~budget ~blind ~seed ~corpus_out =
  let fcfg = { (Fuzz.default config) with Fuzz.budget; guided = not blind } in
  let r = Fuzz.run fcfg ~seed in
  Format.printf "fuzz: executed=%d distinct=%d cells=%d signatures=%d failures=%d@."
    r.Fuzz.r_executed r.Fuzz.r_distinct r.Fuzz.r_cells r.Fuzz.r_signatures
    (List.length r.Fuzz.r_failures);
  print_fuzz_corpus r.Fuzz.r_corpus;
  match corpus_out with
  | None -> ()
  | Some path -> write_file path (Fuzz.corpus_to_string r.Fuzz.r_corpus)

(* Multi-process sharding: re-exec this binary once per shard with a
   derived seed and a per-shard slice of the budget, then merge the shard
   corpora first-wins in shard order — so the merged corpus is as
   deterministic as a single-process run.  Shard stdout goes to
   FILE.shardN.out; the parent prints only the merged summary. *)
let fuzz_sharded config ~topo ~params_name ~hosts ~actions ~horizon_ms ~budget
    ~blind ~seed ~shards ~corpus_out =
  ignore config;
  let base = match corpus_out with Some p -> p | None -> "fuzz-corpus" in
  let shard_files = List.init shards (fun i -> Printf.sprintf "%s.shard%d" base i) in
  let per = budget / shards and extra = budget mod shards in
  let pids =
    List.mapi
      (fun i file ->
        let shard_seed =
          (* Mask to 62 bits so the child's int --seed stays positive. *)
          Int64.to_int
            (Int64.logand
               (Chaos.schedule_seed ~seed:(Int64.of_int seed) (1 + i))
               0x3FFF_FFFF_FFFF_FFFFL)
        in
        let shard_budget = per + if i < extra then 1 else 0 in
        let args =
          [ Sys.executable_name; "chaos"; "--topo"; topo; "--params";
            params_name; "--hosts"; string_of_int hosts; "--actions";
            string_of_int actions; "--horizon-ms"; string_of_int horizon_ms;
            "--fuzz"; string_of_int shard_budget; "--seed";
            string_of_int shard_seed; "--corpus-out"; file ]
          @ if blind then [ "--blind" ] else []
        in
        let out =
          Unix.openfile (file ^ ".out")
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o644
        in
        let pid =
          Unix.create_process Sys.executable_name (Array.of_list args)
            Unix.stdin out Unix.stderr
        in
        Unix.close out;
        pid)
      shard_files
  in
  List.iteri
    (fun i pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ ->
        Format.eprintf "fuzz: shard %d failed (see %s.shard%d.out)@." i base i;
        exit 1)
    pids;
  let corpora =
    List.map
      (fun file ->
        match Fuzz.corpus_of_string (read_file file) with
        | Ok c -> c
        | Error e ->
          Format.eprintf "fuzz: %s: %s@." file e;
          exit 1)
      shard_files
  in
  List.iteri
    (fun i c -> Format.printf "shard %d: distinct=%d@." i (List.length c))
    corpora;
  let merged = Fuzz.merge_corpora corpora in
  Format.printf "fuzz: shards=%d budget=%d merged distinct=%d failures=%d@."
    shards budget (List.length merged)
    (List.length (List.filter (fun e -> e.Fuzz.e_violations <> []) merged));
  print_fuzz_corpus merged;
  match corpus_out with
  | None -> ()
  | Some path -> write_file path (Fuzz.corpus_to_string merged)

let cmd_chaos topos schedules seed hosts params_name actions horizon_ms replay
    spans fuzz blind shards corpus_out churn =
  let params =
    match Params.preset params_name with
    | Some p -> p
    | None -> invalid_arg (params_name ^ ": expected naive | tuned | fast")
  in
  let topos = if topos = [] then [ "src" ] else topos in
  let config topo =
    { Chaos.topo;
      params;
      hosts;
      actions;
      horizon = Time.ms horizon_ms;
      timeout = Time.s 120 }
  in
  let seed64 = Int64.of_int seed in
  match (fuzz, churn) with
  | Some budget, _ ->
    let topo = List.hd topos in
    if shards <= 1 then
      fuzz_here (config topo) ~budget ~blind ~seed:seed64 ~corpus_out
    else
      fuzz_sharded (config topo) ~topo ~params_name ~hosts ~actions ~horizon_ms
        ~budget ~blind ~seed ~shards ~corpus_out
  | None, Some cycles ->
    let topo = List.hd topos in
    let report = Fuzz.churn (config topo) ~seed:seed64 ~cycles in
    Format.printf "%a@." Fuzz.pp_churn_report report;
    if report.Fuzz.ch_not_converged > 0 || report.Fuzz.ch_oracle_violations <> []
    then exit 1
  | None, None -> (
  match replay with
  | Some index ->
    (* Replay one schedule of the campaign (under the first --topo) and
       print the full reproducer artifact, pass or fail. *)
    let topo = List.hd topos in
    let art = Chaos.investigate (config topo) ~seed:seed64 ~index in
    Format.printf "%a@." Chaos.pp_artifact art;
    (match spans with
    | None -> ()
    | Some path -> write_trace_json art.Chaos.a_timeline path);
    if art.Chaos.a_violations <> [] then exit 1
  | None ->
    let failures = ref [] in
    List.iter
      (fun topo ->
        Format.printf "== chaos topo=%s params=%s seed=%d schedules=%d actions=%d ==@."
          topo params_name seed schedules actions;
        let verdicts = Chaos.run_campaign (config topo) ~seed:seed64 ~schedules in
        Array.iter (fun v -> Format.printf "%a@." Chaos.pp_verdict v) verdicts;
        let ok =
          Array.fold_left
            (fun n v -> if Chaos.passed v then n + 1 else n)
            0 verdicts
        in
        Format.printf "== %d/%d passed ==@." ok (Array.length verdicts);
        Array.iter
          (fun v -> if not (Chaos.passed v) then failures := (topo, v) :: !failures)
          verdicts)
      topos;
    (match List.rev !failures with
    | [] -> ()
    | (topo, v) :: _ ->
      (* The artifact goes to stderr so stdout stays byte-comparable
         across domain counts even on a failing campaign. *)
      Format.eprintf
        "chaos: %d failing schedule(s); investigating the first (topo=%s index=%d)@."
        (List.length !failures) topo v.Chaos.index;
      let art = Chaos.investigate (config topo) ~seed:seed64 ~index:v.Chaos.index in
      Format.eprintf "%a@." Chaos.pp_artifact art;
      Format.eprintf "replay: autonet-sim chaos --topo %s --seed %d --replay %d@."
        topo seed v.Chaos.index;
      exit 1))

(* --- Cmdliner --- *)

let topo_arg =
  Arg.(
    value & opt string "torus:3,3"
    & info [ "topo"; "t" ] ~docv:"SPEC"
        ~doc:"Topology: src | line:N | ring:N | torus:R,C | random:N,E.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let hosts_arg =
  Arg.(value & opt int 2 & info [ "hosts" ] ~doc:"Host ports per switch.")

let params_arg =
  Arg.(
    value & opt string "tuned"
    & info [ "params"; "p" ] ~doc:"Autopilot preset: naive | tuned | fast.")

let log_arg =
  Arg.(value & flag & info [ "log" ] ~doc:"Print the merged event log.")

let () =
  let info =
    Cmd.info "autonet-sim" ~doc:"Run simulated Autonets from the command line."
  in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ Cmd.v (Cmd.info "boot" ~doc:"Boot a network to convergence.")
              Term.(
                const cmd_boot $ topo_arg $ seed_arg $ hosts_arg $ params_arg
                $ log_arg);
            Cmd.v
              (Cmd.info "fail-link"
                 ~doc:"Boot, fail a link, measure the reconfiguration.")
              Term.(
                const cmd_fail_link $ topo_arg $ seed_arg $ hosts_arg
                $ params_arg
                $ Arg.(value & opt int 0 & info [ "link" ] ~doc:"Link index.")
                $ log_arg);
            Cmd.v
              (Cmd.info "crash"
                 ~doc:"Boot, power a switch off, measure the reconfiguration.")
              Term.(
                const cmd_crash $ topo_arg $ seed_arg $ hosts_arg $ params_arg
                $ Arg.(
                    value & opt int 0 & info [ "switch" ] ~doc:"Switch index.")
                $ log_arg);
            Cmd.v
              (Cmd.info "srp"
                 ~doc:
                   "Probe a switch over the source-routed debugging protocol.")
              Term.(
                const cmd_srp $ topo_arg $ seed_arg $ hosts_arg $ params_arg
                $ Arg.(
                    value & opt string ""
                    & info [ "route" ] ~docv:"P1,P2,..."
                        ~doc:"Outbound port at each hop, from switch 0."));
            Cmd.v
              (Cmd.info "chaos"
                 ~doc:
                   "Run a randomized fault campaign: seeded schedules of \
                    link flaps, crashes, reboots and partitions, each \
                    checked against the network-wide invariant oracle.")
              Term.(
                const cmd_chaos
                $ Arg.(
                    value & opt_all string []
                    & info [ "topo"; "t" ] ~docv:"SPEC"
                        ~doc:
                          "Topology (repeatable): src | line:N | ring:N | \
                           torus:R,C | random:N,E.  Default src.")
                $ Arg.(
                    value & opt int 50
                    & info [ "schedules" ] ~doc:"Schedules per topology.")
                $ seed_arg
                $ Arg.(
                    value & opt int 0
                    & info [ "hosts" ] ~doc:"Host ports per switch.")
                $ Arg.(
                    value & opt string "fast"
                    & info [ "params"; "p" ]
                        ~doc:"Autopilot preset: naive | tuned | fast.")
                $ Arg.(
                    value & opt int 12
                    & info [ "actions" ] ~doc:"Fault actions per schedule.")
                $ Arg.(
                    value & opt int 2000
                    & info [ "horizon-ms" ]
                        ~doc:"Faults land in [0, HORIZON) milliseconds.")
                $ Arg.(
                    value & opt (some int) None
                    & info [ "replay" ] ~docv:"INDEX"
                        ~doc:
                          "Replay one schedule of the campaign (first \
                           --topo), shrink any failure and print the \
                           reproducer artifact.")
                $ Arg.(
                    value & opt (some string) None
                    & info [ "spans" ] ~docv:"FILE"
                        ~doc:
                          "With --replay: write the replay's \
                           reconfiguration phase timeline as Chrome \
                           trace_event JSON to FILE (- for stdout).")
                $ Arg.(
                    value & opt (some int) None
                    & info [ "fuzz" ] ~docv:"BUDGET"
                        ~doc:
                          "Coverage-guided fuzzing instead of a fixed \
                           campaign: execute BUDGET schedules (first \
                           --topo), keeping and mutating the \
                           signature-novel ones.")
                $ Arg.(
                    value & flag
                    & info [ "blind" ]
                        ~doc:
                          "With --fuzz: disable coverage guidance and \
                           sample every schedule blindly (the baseline \
                           the e19 experiment compares against).")
                $ Arg.(
                    value & opt int 1
                    & info [ "shards" ] ~docv:"N"
                        ~doc:
                          "With --fuzz: split the budget across N child \
                           processes with derived seeds and merge their \
                           corpora first-wins in shard order.")
                $ Arg.(
                    value & opt (some string) None
                    & info [ "corpus-out" ] ~docv:"FILE"
                        ~doc:
                          "With --fuzz: write the final corpus to FILE \
                           (shards write FILE.shardN).")
                $ Arg.(
                    value & opt (some int) None
                    & info [ "churn" ] ~docv:"CYCLES"
                        ~doc:
                          "Long-horizon churn campaign instead of a \
                           fixed campaign: converge one network (first \
                           --topo), then run CYCLES fault/heal cycles \
                           with periodic oracle audits and report \
                           degradation metrics."));
            Cmd.v
              (Cmd.info "telemetry"
                 ~doc:
                   "Boot a network with telemetry on, trigger one \
                    reconfiguration, and report the metric snapshot and \
                    the per-epoch phase timeline.")
              Term.(
                const cmd_telemetry $ topo_arg $ seed_arg $ hosts_arg
                $ params_arg
                $ Arg.(
                    value & opt string "link:0"
                    & info [ "fault" ] ~docv:"FAULT"
                        ~doc:
                          "Reconfiguration trigger after boot: none | \
                           link:N | switch:N.")
                $ Arg.(
                    value & flag
                    & info [ "metrics" ]
                        ~doc:"Print the metric snapshot, one per line.")
                $ Arg.(
                    value & flag
                    & info [ "json" ]
                        ~doc:
                          "Print the snapshot and the trace as one JSON \
                           object on stdout.")
                $ Arg.(
                    value & opt (some string) None
                    & info [ "spans" ] ~docv:"FILE"
                        ~doc:
                          "Write the phase timeline as Chrome trace_event \
                           JSON to FILE (- for stdout); open in \
                           chrome://tracing or Perfetto.")
                $ Arg.(
                    value & flag
                    & info [ "check" ]
                        ~doc:
                          "Validate the emitted JSON: it must re-parse, \
                           and the phase spans must nest inside their \
                           epoch and sum to its duration."));
            Cmd.v
              (Cmd.info "trace"
                 ~doc:
                   "Boot a network with causal tracing on, trigger one \
                    reconfiguration, and reconstruct each epoch's \
                    propagation wave: who heard the epoch from whom, \
                    when, and where the heal latency went.")
              Term.(
                const cmd_trace $ topo_arg $ seed_arg $ hosts_arg
                $ params_arg
                $ Arg.(
                    value & opt string "link:0"
                    & info [ "fault" ] ~docv:"FAULT"
                        ~doc:
                          "Reconfiguration trigger after boot: none | \
                           link:N | switch:N.")
                $ Arg.(
                    value & flag
                    & info [ "json" ]
                        ~doc:
                          "Print the waves and flight recorders as one \
                           JSON object on stdout instead of the ASCII \
                           propagation trees.")
                $ Arg.(
                    value & opt (some string) None
                    & info [ "spans" ] ~docv:"FILE"
                        ~doc:
                          "Write the per-switch span tracks as Chrome \
                           trace_event JSON to FILE (- for stdout); one \
                           track per switch, complementing the per-epoch \
                           tracks of the telemetry command.")
                $ Arg.(
                    value & flag
                    & info [ "check" ]
                        ~doc:
                          "Validate the last healed wave: the JSON must \
                           re-parse and the propagation forest must \
                           cover every configured switch exactly once \
                           with valid parent hops.")) ]))
