(* topo-tool: inspect what the reconfiguration algorithms decide for a
   topology — the graph, the spanning tree, the up*/down* orientation, the
   address assignment, a route between two switches, and the deadlock
   analysis of the resulting tables.

     dune exec bin/topo_tool.exe -- --topo torus:4,8 tree
     dune exec bin/topo_tool.exe -- --topo src route 0 29
     dune exec bin/topo_tool.exe -- --topo random:16,8 --seed 7 check *)

open Autonet_core
open Autonet_net
module B = Autonet_topo.Builders
open Cmdliner

let build_topo spec seed =
  let rng = Autonet_sim.Rng.create ~seed:(Int64.of_int seed) in
  match String.split_on_char ':' spec with
  | [ "src" ] -> B.src_service_lan ()
  | [ "figure9" ] -> fst (B.figure9 ())
  | [ "line"; n ] -> B.line ~n:(int_of_string n) ()
  | [ "ring"; n ] -> B.ring ~n:(int_of_string n) ()
  | [ "star"; n ] -> B.star ~leaves:(int_of_string n) ()
  | [ "torus"; rc ] -> (
    match String.split_on_char ',' rc with
    | [ r; c ] -> B.torus ~rows:(int_of_string r) ~cols:(int_of_string c) ()
    | _ -> invalid_arg "torus:ROWS,COLS")
  | [ "mesh"; rc ] -> (
    match String.split_on_char ',' rc with
    | [ r; c ] -> B.mesh ~rows:(int_of_string r) ~cols:(int_of_string c) ()
    | _ -> invalid_arg "mesh:ROWS,COLS")
  | [ "tree"; ad ] -> (
    match String.split_on_char ',' ad with
    | [ a; d ] -> B.tree ~arity:(int_of_string a) ~depth:(int_of_string d) ()
    | _ -> invalid_arg "tree:ARITY,DEPTH")
  | [ "random"; ne ] -> (
    match String.split_on_char ',' ne with
    | [ n; e ] ->
      B.random_connected ~rng ~n:(int_of_string n)
        ~extra_links:(int_of_string e) ()
    | _ -> invalid_arg "random:N,EXTRA")
  | _ ->
    invalid_arg
      (spec
     ^ ": expected src | figure9 | line:N | ring:N | star:N | torus:R,C | \
        mesh:R,C | tree:A,D | random:N,E")

let configure topo =
  let g = topo.B.graph in
  let tree = Spanning_tree.compute g ~member:0 in
  let updown = Updown.orient g tree in
  let routes = Routes.compute g tree updown in
  let assignment =
    Address_assign.make g
      (List.map (fun s -> (s, 1)) (Spanning_tree.members tree))
  in
  (g, tree, updown, routes, assignment)

let cmd_graph topo =
  Format.printf "%a@." B.pp topo

let cmd_tree topo =
  let g, tree, updown, _, _ = configure topo in
  Format.printf "%a@.%a@." (Spanning_tree.pp g) tree (Updown.pp g) updown

let cmd_addresses topo =
  let g, _, _, _, assignment = configure topo in
  Format.printf "%a@." Address_assign.pp assignment;
  List.iter
    (fun (h : Graph.host_attachment) ->
      Format.printf "  host %a at s%d.p%d -> %a@." Uid.pp h.host_uid h.switch
        h.switch_port Short_address.pp
        (Address_assign.address assignment h.switch h.switch_port))
    (Graph.hosts g)

let cmd_route topo src dst =
  let g, _, updown, routes, _ = configure topo in
  match Routes.distance routes ~src ~dst with
  | None -> Format.printf "s%d cannot reach s%d@." src dst
  | Some d ->
    Format.printf "s%d -> s%d: %d hop(s) on minimal legal routes@." src dst d;
    (* Walk one minimal route, printing the up/down direction per hop. *)
    let rec walk at phase =
      if at <> dst then begin
        match Routes.next_hops routes ~at ~phase ~dst with
        | [] -> Format.printf "  (stuck at s%d?)@." at
        | (p, l_id) :: _ ->
          let l = Option.get (Graph.link g l_id) in
          let peer, _ = Graph.other_end l at in
          let up = Updown.goes_up updown l ~from:at in
          Format.printf "  s%d --p%d--> s%d (%s)@." at p peer
            (if up then "up" else "down");
          walk peer (if up then phase else Routes.Down)
      end
    in
    walk src Routes.Up

let cmd_check topo =
  let g, tree, updown, routes, assignment = configure topo in
  let pool = Autonet_parallel.Pool.default () in
  Autonet_parallel.Pool.set_metrics_enabled pool true;
  let specs = Tables.build_all ~pool g tree updown routes assignment in
  let net = Verify.make g specs in
  Format.printf "switches: %d, links: %d, host ports: %d@."
    (Graph.switch_count g) (Graph.link_count g)
    (List.length (Graph.hosts g));
  Format.printf "domains: %d@." (Autonet_parallel.Pool.domains pool);
  Format.printf "orientation acyclic: %b@." (Updown.verify_acyclic g updown);
  Format.printf "deadlock analysis: %a@." Deadlock.pp_result
    (Deadlock.check_tables ~pool g specs);
  Format.printf "down-then-up entries: %s@."
    (if Verify.no_down_then_up net updown then "none" else "PRESENT (bug)");
  let failures = Verify.all_hosts_reach_all net assignment in
  Format.printf "host pairs failing to deliver: %d@." (List.length failures);
  let entries =
    List.fold_left (fun acc s -> acc + Tables.entry_count s) 0 specs
  in
  Format.printf "forwarding table entries: %d total@." entries;
  (* How the pool actually scheduled the two fan-outs above: batches
     claimed and batches stolen off another domain's static share.
     Diagnostic only — unlike the deterministic pool counters, these
     depend on the domain count. *)
  Format.printf "pool scheduling:@.%s"
    (Autonet_telemetry.Metrics.render
       (Autonet_parallel.Pool.sched_snapshot pool))

(* --- Cmdliner plumbing --- *)

let topo_arg =
  let doc =
    "Topology: src | figure9 | line:N | ring:N | star:N | torus:R,C | \
     mesh:R,C | tree:A,D | random:N,E."
  in
  Arg.(value & opt string "src" & info [ "topo"; "t" ] ~docv:"SPEC" ~doc)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let hosts_arg =
  Arg.(
    value & opt int 0
    & info [ "hosts" ] ~docv:"N" ~doc:"Attach N host ports per switch.")

let with_topo f spec seed hosts =
  let topo = build_topo spec seed in
  let topo =
    if hosts > 0 then B.attach_hosts topo ~per_switch:hosts else topo
  in
  f topo

let simple name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(const (with_topo f) $ topo_arg $ seed_arg $ hosts_arg)

let route_cmd =
  let src = Arg.(required & pos 0 (some int) None & info [] ~docv:"SRC") in
  let dst = Arg.(required & pos 1 (some int) None & info [] ~docv:"DST") in
  Cmd.v
    (Cmd.info "route" ~doc:"Show a minimal legal route between two switches.")
    Term.(
      const (fun spec seed hosts s d ->
          with_topo (fun topo -> cmd_route topo s d) spec seed hosts)
      $ topo_arg $ seed_arg $ hosts_arg $ src $ dst)

let () =
  let info =
    Cmd.info "autonet-topo"
      ~doc:"Inspect Autonet topologies, spanning trees, routes and tables."
  in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ simple "graph" "Print the physical topology." cmd_graph;
            simple "tree" "Print the spanning tree and link orientation."
              cmd_tree;
            simple "addresses" "Print switch numbers and host addresses."
              cmd_addresses;
            route_cmd;
            simple "check"
              "Verify reachability, deadlock freedom and table invariants."
              cmd_check ]))
